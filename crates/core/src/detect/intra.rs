//! Intra-query detection rules (§4.1 ❶).
//!
//! Each rule inspects one statement (plus, in contextual mode, the
//! application context for false-positive suppression). Rules are plain
//! functions over the annotated parse tree — "general-purpose functions
//! that leverage the overall context of the application".

use crate::anti_pattern::AntiPatternKind;
use crate::context::{AnalyzedStatement, Context};
use crate::detect::DetectionConfig;
use crate::report::{Detection, DetectionSource, Locus, Span};
use sqlcheck_parser::annotate::{annotate, Annotations};
use sqlcheck_parser::arena::{ExprArena, ExprId};
use sqlcheck_parser::IStr;
use sqlcheck_parser::ast::*;

/// Run every intra-query rule against one statement, fanning into the
/// body sub-statements of compound DDL (`CREATE TRIGGER` / `CREATE
/// PROCEDURE` / `CREATE FUNCTION`): a `SELECT *` or `ORDER BY RAND()`
/// inside a trigger body is still an anti-pattern. Body detections carry
/// the enclosing statement's locus plus a **statement-relative** span
/// pointing into the body (`attach_spans` rebases it onto each
/// occurrence's source range).
pub fn detect_statement(
    idx: usize,
    stmt: &AnalyzedStatement,
    ctx: &Context,
    cfg: &DetectionConfig,
    use_context: bool,
) -> Vec<Detection> {
    let arena = &stmt.parsed.arena;
    let mut out = detect_one(idx, &stmt.parsed.stmt, arena, &stmt.ann, ctx, cfg, use_context, None);
    for b in stmt.parsed.stmt.body() {
        // The sub-statement gets its own annotation digest, so per-
        // statement rules (pattern predicates, wildcard, …) see only the
        // body statement — not the aggregated trigger digest. Computed
        // here (once per unique text on the batch path) rather than
        // stored in the AST. Body sub-statements share the enclosing
        // statement's arena.
        let sub_ann = annotate(&b.stmt, arena);
        out.extend(detect_one(idx, &b.stmt, arena, &sub_ann, ctx, cfg, use_context, Some(b.span)));
    }
    out
}

/// The per-statement rule set. `body_span` is `Some` when `stmt` is a
/// body sub-statement of a compound statement at index `idx`.
#[allow(clippy::too_many_arguments)]
fn detect_one(
    idx: usize,
    stmt: &Statement,
    arena: &ExprArena,
    ann: &Annotations,
    ctx: &Context,
    cfg: &DetectionConfig,
    use_context: bool,
    body_span: Option<Span>,
) -> Vec<Detection> {
    let mut out = Vec::new();
    let mut push = |kind: AntiPatternKind, message: String| {
        out.push(Detection {
            kind,
            locus: Locus::Statement { index: idx },
            message: message.into(),
            source: DetectionSource::IntraQuery,
            span: body_span,
        });
    };

    match stmt {
        Statement::Select(sel) => {
            select_rules(sel, arena, ann, ctx, cfg, use_context, &mut push);
        }
        Statement::Insert(ins) => insert_rules(ins, arena, &mut push),
        Statement::Update(upd) => update_rules(upd, arena, ctx, use_context, &mut push),
        Statement::CreateTable(ct) => create_table_rules(ct, ctx, cfg, use_context, &mut push),
        Statement::AlterTable(at) => alter_rules(at, &mut push),
        _ => {}
    }
    out
}

// ---------------------------------------------------------------------------
// SELECT rules
// ---------------------------------------------------------------------------

fn select_rules(
    sel: &Select,
    arena: &ExprArena,
    ann: &Annotations,
    ctx: &Context,
    cfg: &DetectionConfig,
    use_context: bool,
    push: &mut impl FnMut(AntiPatternKind, String),
) {
    // Column Wildcard Usage: SELECT * breaks on refactoring.
    if sel.has_wildcard() {
        push(
            AntiPatternKind::ColumnWildcard,
            "SELECT * retrieves all columns; schema changes silently break the application"
                .to_string(),
        );
    }

    // Ordering by RAND.
    let rand_in_order = sel.order_by.iter().any(|o| {
        arena
            .function_calls(o.expr)
            .iter()
            .any(|f| f == "RAND" || f == "RANDOM" || f == "NEWID")
    });
    if rand_in_order {
        push(
            AntiPatternKind::OrderingByRand,
            "ORDER BY RAND() sorts the entire table to pick random rows".to_string(),
        );
    }

    // DISTINCT + JOIN: DISTINCT papering over join-induced duplicates.
    if sel.distinct && sel.join_count() > 0 {
        let suppressed = use_context && joins_on_unique_keys(sel, arena, ctx);
        if !suppressed {
            push(
                AntiPatternKind::DistinctJoin,
                format!(
                    "DISTINCT over {} join(s) usually masks duplicates produced by the join",
                    sel.join_count()
                ),
            );
        }
    }

    // Too many joins.
    if sel.join_count() >= cfg.too_many_joins {
        push(
            AntiPatternKind::TooManyJoins,
            format!(
                "{} joins exceed the threshold of {}",
                sel.join_count(),
                cfg.too_many_joins
            ),
        );
    }

    // Pattern matching: leading-wildcard LIKE or regex operators.
    pattern_rules(ann, push);

    // Multi-valued attribute heuristics in queries (Example 1 / §4.1's
    // pattern rule `(id\s+regexp)|(id\s+like)`).
    mva_query_rule(ann, ctx, use_context, push);

    // Concatenate Nulls: `||` over possibly-NULL columns.
    concat_nulls_rule(sel, arena, ann, ctx, use_context, push);

    // Readable password in predicates (`WHERE password = '...'`).
    let pw_compared = ann.predicates.iter().any(|p| is_password_column(&p.column));
    if pw_compared {
        push(
            AntiPatternKind::ReadablePassword,
            "query compares a password column against a plain-text value".to_string(),
        );
    }
}

fn joins_on_unique_keys(sel: &Select, arena: &ExprArena, ctx: &Context) -> bool {
    // Suppress DISTINCT+JOIN when every equi-join lands on a primary key:
    // such joins cannot introduce duplicates, so DISTINCT is benign.
    let mut all_unique = true;
    let mut any = false;
    for j in &sel.joins {
        let Some(on) = j.on else { continue };
        let mut side_is_pk = false;
        arena.walk(on, &mut |e| {
            if let Expr::Binary { left, op, right } = e {
                if op == "=" || op == "==" {
                    for side in [left, right] {
                        if let Expr::Ident(parts) = arena.node(*side) {
                            if parts.len() == 2 {
                                let (q, c) = (&parts[0], &parts[1]);
                                let table = resolve_alias(sel, q);
                                if let Some(t) = ctx.schema.table(&table) {
                                    if t.primary_key.len() == 1
                                        && t.primary_key[0].eq_ignore_ascii_case(c)
                                    {
                                        side_is_pk = true;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        });
        any = true;
        all_unique &= side_is_pk;
    }
    any && all_unique
}

fn resolve_alias(sel: &Select, q: &str) -> String {
    for t in sel.tables() {
        if t.binding().eq_ignore_ascii_case(q) {
            return t.name.name().to_string();
        }
    }
    q.to_string()
}

fn pattern_rules(ann: &Annotations, push: &mut impl FnMut(AntiPatternKind, String)) {
    use sqlcheck_parser::ast::LikeOp;
    let mut worst: Option<String> = None;
    for op in &ann.pattern_ops {
        if matches!(op, LikeOp::Regexp | LikeOp::Similar | LikeOp::Glob) {
            worst = Some(format!("{} forces a full scan with per-row regex evaluation", op.sql()));
        }
    }
    if worst.is_none() {
        for pat in &ann.compared_strings {
            if pat.starts_with('%') || pat.starts_with('_') || pat.contains("[[:") {
                worst = Some(format!(
                    "LIKE '{pat}' cannot use an index (leading wildcard)"
                ));
                break;
            }
        }
    }
    if let Some(msg) = worst {
        push(AntiPatternKind::PatternMatching, msg);
    }
}

fn mva_query_rule(
    ann: &Annotations,
    ctx: &Context,
    use_context: bool,
    push: &mut impl FnMut(AntiPatternKind, String),
) {
    // Pattern predicates applied to id-list-looking columns, or patterns
    // carrying word-boundary markers, suggest a delimiter-separated list.
    let mut evidence: Option<String> = None;
    for p in &ann.predicates {
        let is_pattern =
            matches!(p.op.as_str(), "LIKE" | "ILIKE" | "REGEXP" | "GLOB" | "SIMILAR TO");
        if is_pattern && id_list_column(&p.column) {
            evidence = Some(format!(
                "pattern predicate on '{}' — a delimiter-separated id list?",
                p.column
            ));
        }
    }
    for s in &ann.compared_strings {
        if s.contains("[[:<:]]") || s.contains("[[:>:]]") {
            evidence =
                Some(format!("word-boundary pattern '{s}' searches inside a value list"));
        }
    }
    for jc in &ann.join_conditions {
        if jc.is_pattern {
            evidence = Some(format!(
                "expression join on '{}' via LIKE — joining against a value list",
                jc.left.1
            ));
        }
    }
    if let Some(msg) = evidence {
        // Contextual suppression: address-like columns legitimately contain
        // commas (the paper's stated false-positive source).
        if use_context {
            let suspicious_cols: Vec<&str> = ann
                .predicates
                .iter()
                .map(|p| p.column.as_str())
                .chain(ann.join_conditions.iter().map(|j| j.left.1.as_str()))
                .collect();
            if suspicious_cols.iter().all(|c| address_like(c)) && !suspicious_cols.is_empty() {
                return;
            }
            let _ = ctx;
        }
        push(AntiPatternKind::MultiValuedAttribute, msg);
    }
}

fn concat_nulls_rule(
    sel: &Select,
    arena: &ExprArena,
    ann: &Annotations,
    ctx: &Context,
    use_context: bool,
    push: &mut impl FnMut(AntiPatternKind, String),
) {
    // Find `||` over column references anywhere in the statement.
    let mut concat_cols: Vec<(Option<IStr>, IStr)> = Vec::new();
    let mut visit = |e: ExprId| {
        arena.walk(e, &mut |node| {
            if let Expr::Binary { left, op, right } = node {
                if op == "||" {
                    for side in [left, right] {
                        if let Expr::Ident(parts) = arena.node(*side) {
                            match parts.len() {
                                1 => concat_cols.push((None, parts[0].clone())),
                                2 => concat_cols
                                    .push((Some(parts[0].clone()), parts[1].clone())),
                                _ => {}
                            }
                        }
                    }
                }
            }
        });
    };
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            visit(*expr);
        }
    }
    if let Some(w) = sel.where_clause {
        visit(w);
    }
    for j in &sel.joins {
        if let Some(on) = j.on {
            visit(on);
        }
    }
    if concat_cols.is_empty() {
        return;
    }
    if use_context {
        // Suppress when every concatenated column is provably NOT NULL.
        let all_not_null = concat_cols.iter().all(|(q, c)| {
            let table = match q {
                Some(q) => resolve_alias(sel, q),
                None => ann.tables.first().map(|t| t.to_string()).unwrap_or_default(),
            };
            ctx.schema
                .table(&table)
                .and_then(|t| t.column(c))
                .map(|ci| ci.not_null)
                .unwrap_or(false)
        });
        if all_not_null {
            return;
        }
    }
    push(
        AntiPatternKind::ConcatenateNulls,
        format!(
            "'||' concatenation over column(s) {} yields NULL if any operand is NULL",
            concat_cols
                .iter()
                .map(|(_, c)| c.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    );
}

// ---------------------------------------------------------------------------
// INSERT / UPDATE rules
// ---------------------------------------------------------------------------

fn insert_rules(ins: &Insert, arena: &ExprArena, push: &mut impl FnMut(AntiPatternKind, String)) {
    if ins.columns.is_empty() && matches!(ins.source, InsertSource::Values(_)) {
        push(
            AntiPatternKind::ImplicitColumns,
            format!(
                "INSERT INTO {} without a column list breaks when the schema evolves",
                ins.table.name()
            ),
        );
    }
    // MVA evidence: inserting a delimiter-separated token list.
    if let InsertSource::Values(rows) = &ins.source {
        for row in rows {
            for e in row.iter() {
                if let Expr::StringLit(s) = arena.node(e) {
                    if looks_like_token_list(s) {
                        push(
                            AntiPatternKind::MultiValuedAttribute,
                            format!("inserting delimiter-separated list '{s}'"),
                        );
                        return;
                    }
                }
            }
        }
    }
}

fn update_rules(
    upd: &Update,
    arena: &ExprArena,
    _ctx: &Context,
    _use_context: bool,
    push: &mut impl FnMut(AntiPatternKind, String),
) {
    for (col, val) in &upd.assignments {
        if is_password_column(col) {
            if let Expr::StringLit(_) = arena.node(*val) {
                push(
                    AntiPatternKind::ReadablePassword,
                    format!("UPDATE stores a plain-text value into password column '{col}'"),
                );
            }
        }
        // REPLACE() surgery on a list column is the paper's DI example.
        if let Expr::Function { name, .. } = arena.node(*val) {
            if name.eq_ignore_ascii_case("REPLACE") && id_list_column(col) {
                push(
                    AntiPatternKind::MultiValuedAttribute,
                    format!("string surgery (REPLACE) on list column '{col}'"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DDL rules
// ---------------------------------------------------------------------------

fn create_table_rules(
    ct: &CreateTable,
    ctx: &Context,
    cfg: &DetectionConfig,
    use_context: bool,
    push: &mut impl FnMut(AntiPatternKind, String),
) {
    let tname = ct.name.name();

    // No Primary Key — contextual mode checks whether a later ALTER TABLE
    // added one (the catalog already folded all DDL).
    if !ct.has_primary_key() {
        let fixed_later = use_context
            && ctx.schema.table(tname).map(|t| t.has_primary_key()).unwrap_or(false);
        if !fixed_later {
            push(
                AntiPatternKind::NoPrimaryKey,
                format!("table '{tname}' declares no primary key"),
            );
        }
    } else {
        // Generic Primary Key: a lone surrogate `id` column.
        let pk = ct.primary_key_columns();
        if pk.len() == 1 && pk[0].eq_ignore_ascii_case("id") {
            push(
                AntiPatternKind::GenericPrimaryKey,
                format!("table '{tname}' uses a generic 'id' primary key"),
            );
        }
    }

    // God Table.
    if ct.columns.len() >= cfg.god_table_columns {
        push(
            AntiPatternKind::GodTable,
            format!(
                "table '{tname}' has {} columns (threshold {})",
                ct.columns.len(),
                cfg.god_table_columns
            ),
        );
    }

    // Rounding Errors / Enumerated Types / External Data Storage /
    // Readable Password — per column.
    for col in &ct.columns {
        if let Some(ty) = &col.data_type {
            if ty.is_inexact_fractional() {
                push(
                    AntiPatternKind::RoundingErrors,
                    format!(
                        "column '{tname}.{}' stores fractional data as {}",
                        col.name, ty.name
                    ),
                );
            }
            if ty.name == "ENUM" {
                push(
                    AntiPatternKind::EnumeratedTypes,
                    format!(
                        "column '{tname}.{}' uses ENUM({} values)",
                        col.name,
                        ty.args.len()
                    ),
                );
            }
            if ty.is_textual() && external_storage_column(&col.name) {
                push(
                    AntiPatternKind::ExternalDataStorage,
                    format!("column '{tname}.{}' stores file paths/URLs", col.name),
                );
            }
            if ty.is_textual() && is_password_column(&col.name) {
                push(
                    AntiPatternKind::ReadablePassword,
                    format!("column '{tname}.{}' stores passwords as text", col.name),
                );
            }
            if ty.is_temporal() && ty.name != "DATE" && !ty.has_timezone() {
                push(
                    AntiPatternKind::MissingTimezone,
                    format!("column '{tname}.{}' stores date-time without timezone", col.name),
                );
            }
        }
        for c in &col.constraints {
            if let ColumnConstraint::Check(ch) = c {
                if ch.in_list.is_some() {
                    push(
                        AntiPatternKind::EnumeratedTypes,
                        format!(
                            "CHECK IN-list constrains '{tname}.{}' to fixed values",
                            col.name
                        ),
                    );
                }
            }
        }
    }

    // Table-level CHECK IN-lists.
    for tc in &ct.constraints {
        if let TableConstraintKind::Check(ch) = &tc.kind {
            if let Some((col, vals)) = &ch.in_list {
                push(
                    AntiPatternKind::EnumeratedTypes,
                    format!(
                        "CHECK IN-list constrains '{tname}.{col}' to {} fixed values",
                        vals.len()
                    ),
                );
            }
        }
    }

    // Adjacency List: self-referencing FK.
    for (cols, fk) in ct.foreign_keys() {
        if fk.table.name_eq(tname) {
            push(
                AntiPatternKind::AdjacencyList,
                format!(
                    "column '{}' references its own table '{tname}' (hierarchy as adjacency list)",
                    cols.join(", ")
                ),
            );
        }
    }

    // Data in Metadata: numbered column families (tag1, tag2, tag3 ...).
    let families = numbered_families(ct);
    for (stem, n) in families {
        push(
            AntiPatternKind::DataInMetadata,
            format!("table '{tname}' has {n} numbered '{stem}N' columns — data encoded in metadata"),
        );
    }

    // Multi-valued attribute hint in DDL: plural *_ids text column.
    for col in &ct.columns {
        let textual =
            col.data_type.as_ref().map(|t| t.is_textual()).unwrap_or(false);
        if textual && id_list_column(&col.name) {
            push(
                AntiPatternKind::MultiValuedAttribute,
                format!("text column '{tname}.{}' looks like an id list", col.name),
            );
        }
    }
}

fn alter_rules(at: &AlterTable, push: &mut impl FnMut(AntiPatternKind, String)) {
    if let AlterAction::AddConstraint(tc) = &at.action {
        if let TableConstraintKind::Check(ch) = &tc.kind {
            if let Some((col, vals)) = &ch.in_list {
                push(
                    AntiPatternKind::EnumeratedTypes,
                    format!(
                        "ALTER adds a CHECK IN-list on '{}.{col}' ({} values)",
                        at.table.name(),
                        vals.len()
                    ),
                );
            }
        }
    }
    if let AlterAction::AddColumn(cd) = &at.action {
        if let Some(ty) = &cd.data_type {
            if ty.is_inexact_fractional() {
                push(
                    AntiPatternKind::RoundingErrors,
                    format!(
                        "ALTER adds {} column '{}.{}'",
                        ty.name,
                        at.table.name(),
                        cd.name
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared heuristics
// ---------------------------------------------------------------------------

pub(crate) fn id_list_column(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    n.ends_with("_ids") || n.ends_with("ids") && n.len() > 3 || n.ends_with("_list")
}

pub(crate) fn address_like(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    ["address", "addr", "description", "comment", "note", "body", "message", "text"]
        .iter()
        .any(|k| n.contains(k))
}

pub(crate) fn is_password_column(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    n == "password" || n == "passwd" || n == "pwd" || n.ends_with("_password")
}

pub(crate) fn external_storage_column(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    ["path", "filepath", "file_name", "filename", "url", "uri", "image_path", "attachment"]
        .iter()
        .any(|k| n.contains(k))
}

/// True for strings like `U1,U2` or `a; b; c` — token lists.
pub(crate) fn looks_like_token_list(s: &str) -> bool {
    let seps = s.chars().filter(|c| *c == ',' || *c == ';').count();
    if seps == 0 {
        return false;
    }
    let tokens: Vec<&str> =
        s.split([',', ';']).map(str::trim).collect();
    tokens.len() >= 2
        && tokens.iter().all(|t| {
            !t.is_empty()
                && t.len() <= 24
                && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        })
}

/// Column families like `tag1, tag2, tag3` in a CREATE TABLE.
fn numbered_families(ct: &CreateTable) -> Vec<(String, usize)> {
    use std::collections::BTreeMap;
    let mut stems: BTreeMap<String, usize> = BTreeMap::new();
    for col in &ct.columns {
        let name = col.name.trim_end_matches(|c: char| c.is_ascii_digit());
        if name.len() < col.name.len() && !name.is_empty() {
            *stems.entry(name.trim_end_matches('_').to_ascii_lowercase()).or_default() += 1;
        }
    }
    stems.into_iter().filter(|(_, n)| *n >= 2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextBuilder;
    use crate::detect::{DetectionConfig, Detector};

    fn kinds(sql: &str) -> Vec<AntiPatternKind> {
        let ctx = ContextBuilder::new().add_script(sql).build();
        Detector::default().detect(&ctx).kinds()
    }

    fn kinds_intra(sql: &str) -> Vec<AntiPatternKind> {
        let ctx = ContextBuilder::new().add_script(sql).build();
        Detector::new(DetectionConfig::intra_only()).detect(&ctx).kinds()
    }

    #[test]
    fn wildcard_and_implicit_columns() {
        assert!(kinds("SELECT * FROM t").contains(&AntiPatternKind::ColumnWildcard));
        assert!(kinds("INSERT INTO t VALUES (1)").contains(&AntiPatternKind::ImplicitColumns));
        assert!(!kinds("INSERT INTO t (a) VALUES (1)")
            .contains(&AntiPatternKind::ImplicitColumns));
    }

    #[test]
    fn order_by_rand_detected() {
        assert!(kinds("SELECT * FROM t ORDER BY RAND()")
            .contains(&AntiPatternKind::OrderingByRand));
        assert!(kinds("SELECT * FROM t ORDER BY RANDOM()")
            .contains(&AntiPatternKind::OrderingByRand));
        assert!(!kinds("SELECT * FROM t ORDER BY a").contains(&AntiPatternKind::OrderingByRand));
    }

    #[test]
    fn pattern_matching_leading_wildcard_only() {
        assert!(kinds("SELECT a FROM t WHERE a LIKE '%x%'")
            .contains(&AntiPatternKind::PatternMatching));
        assert!(kinds("SELECT a FROM t WHERE a REGEXP 'x.*'")
            .contains(&AntiPatternKind::PatternMatching));
        assert!(
            !kinds("SELECT a FROM t WHERE a LIKE 'x%'")
                .contains(&AntiPatternKind::PatternMatching),
            "prefix patterns can use an index — not an AP"
        );
    }

    #[test]
    fn mva_from_paper_task1_query() {
        let k = kinds("SELECT * FROM Tenants WHERE User_IDs LIKE '[[:<:]]U1[[:>:]]'");
        assert!(k.contains(&AntiPatternKind::MultiValuedAttribute));
    }

    #[test]
    fn mva_suppressed_for_address_columns() {
        let intra = kinds_intra("SELECT * FROM t WHERE address LIKE '%Main St,%'");
        let full = kinds("SELECT * FROM t WHERE address LIKE '%Main St,%'");
        // intra flags pattern matching either way, but MVA only without context
        assert!(!full.contains(&AntiPatternKind::MultiValuedAttribute));
        let _ = intra;
    }

    #[test]
    fn mva_from_insert_token_list() {
        let k = kinds("INSERT INTO Tenant (id, users) VALUES ('T1', 'U1,U2,U3')");
        assert!(k.contains(&AntiPatternKind::MultiValuedAttribute));
    }

    #[test]
    fn distinct_join_flagged_and_suppressed_on_pk_join() {
        let plain = kinds("SELECT DISTINCT a FROM t JOIN u ON t.x = u.y");
        assert!(plain.contains(&AntiPatternKind::DistinctJoin));
        let with_pk = kinds(
            "CREATE TABLE u (id INT PRIMARY KEY);\
             SELECT DISTINCT a FROM t JOIN u ON t.uid = u.id;",
        );
        assert!(
            !with_pk.contains(&AntiPatternKind::DistinctJoin),
            "join on PK cannot create duplicates"
        );
    }

    #[test]
    fn too_many_joins_threshold() {
        let sql = "SELECT * FROM a JOIN b ON a.x=b.x JOIN c ON b.x=c.x JOIN d ON c.x=d.x \
                   JOIN e ON d.x=e.x JOIN f ON e.x=f.x";
        assert!(kinds(sql).contains(&AntiPatternKind::TooManyJoins));
        assert!(!kinds("SELECT * FROM a JOIN b ON a.x=b.x")
            .contains(&AntiPatternKind::TooManyJoins));
    }

    #[test]
    fn concat_nulls_with_context_suppression() {
        let nullable = kinds(
            "CREATE TABLE u (first TEXT, last TEXT);\
             SELECT first || ' ' || last FROM u;",
        );
        assert!(nullable.contains(&AntiPatternKind::ConcatenateNulls));
        let not_null = kinds(
            "CREATE TABLE u (first TEXT NOT NULL, last TEXT NOT NULL);\
             SELECT first || last FROM u;",
        );
        assert!(
            !not_null.contains(&AntiPatternKind::ConcatenateNulls),
            "NOT NULL columns cannot produce NULL concat"
        );
    }

    #[test]
    fn ddl_rules() {
        let k = kinds(
            "CREATE TABLE t (id INT PRIMARY KEY, price FLOAT, role ENUM('a','b'), \
             photo_path TEXT, password VARCHAR(64), created DATETIME)",
        );
        assert!(k.contains(&AntiPatternKind::GenericPrimaryKey));
        assert!(k.contains(&AntiPatternKind::RoundingErrors));
        assert!(k.contains(&AntiPatternKind::EnumeratedTypes));
        assert!(k.contains(&AntiPatternKind::ExternalDataStorage));
        assert!(k.contains(&AntiPatternKind::ReadablePassword));
        assert!(k.contains(&AntiPatternKind::MissingTimezone));
        assert!(!k.contains(&AntiPatternKind::NoPrimaryKey));
    }

    #[test]
    fn adjacency_list_detected() {
        let k = kinds("CREATE TABLE emp (id INT PRIMARY KEY, mgr INT REFERENCES emp(id))");
        assert!(k.contains(&AntiPatternKind::AdjacencyList));
    }

    #[test]
    fn data_in_metadata_numbered_columns() {
        let k = kinds("CREATE TABLE p (id INT PRIMARY KEY, tag1 TEXT, tag2 TEXT, tag3 TEXT)");
        assert!(k.contains(&AntiPatternKind::DataInMetadata));
    }

    #[test]
    fn enumerated_types_via_alter_check() {
        let k = kinds(
            "ALTER TABLE User ADD CONSTRAINT c CHECK (Role IN ('R1','R2','R3'))",
        );
        assert!(k.contains(&AntiPatternKind::EnumeratedTypes));
    }

    #[test]
    fn timestamptz_not_flagged() {
        let k = kinds("CREATE TABLE t (id INT PRIMARY KEY, at TIMESTAMP WITH TIME ZONE)");
        assert!(!k.contains(&AntiPatternKind::MissingTimezone));
    }

    #[test]
    fn token_list_heuristic() {
        assert!(looks_like_token_list("U1,U2"));
        assert!(looks_like_token_list("a; b; c"));
        assert!(!looks_like_token_list("hello world"));
        assert!(!looks_like_token_list("one"));
        assert!(!looks_like_token_list("12 Main St, Springfield, IL"), "spaces in tokens");
    }
}
