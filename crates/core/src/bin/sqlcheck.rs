//! `sqlcheck` — command-line interface (the paper's §7 interactive-shell
//! analogue).
//!
//! ```text
//! sqlcheck [FLAGS] [FILE]          # FILE omitted or '-' reads stdin
//!
//!   --intra-only         intra-query analysis only (§8.1 configuration 1)
//!   --weights c1|c2      ranking weight preset (Fig 7a; default c1)
//!   --rank-by count      inter-query model: AP count per query
//!   --no-fix             detection + ranking only
//!   --summary            per-kind histogram instead of full listing
//!   --parallel           batch engine: template dedup + threaded detection
//!   --threads N          worker threads for --parallel (0 or omitted:
//!                        auto-detect all cores)
//!   --stats              batch engine + dedup/phase-timing stats on stderr
//!   --cache              batch engine + incremental detection cache
//!   --dialect D          SQL dialect: generic (default), postgres, mysql,
//!                        sqlite. Without this flag the dialect is guessed
//!                        from the script (DELIMITER/backticks -> mysql,
//!                        dollar-quoted bodies -> postgres) and the guess
//!                        is reported as a dialect-guessed diagnostic.
//!   --fail-on-degraded   exit 3 when any statement parsed degraded or a
//!                        rule unit failed (see --stats for details)
//! ```
//!
//! Note on `--cache`: the cache pays off across *repeated*
//! `check_workload` calls on one `SqlCheck` instance (the library API);
//! a single CLI invocation performs one check, so `--cache --stats`
//! reports the miss/insert side only — useful for inspecting cache
//! behaviour, not for speeding up a one-shot run.
//!
//! Example:
//!
//! ```text
//! echo "INSERT INTO Users VALUES (1, 'foo')" | sqlcheck -
//! ```

use sqlcheck::{
    BatchOptions, DetectionConfig, DiagKind, Dialect, Fix, InterQueryModel, RankWeights, SqlCheck,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let intra_only = args.iter().any(|a| a == "--intra-only");
    let no_fix = args.iter().any(|a| a == "--no-fix");
    let summary = args.iter().any(|a| a == "--summary");
    let stats = args.iter().any(|a| a == "--stats");
    let cache = args.iter().any(|a| a == "--cache");
    let fail_on_degraded = args.iter().any(|a| a == "--fail-on-degraded");
    // `--threads 0` means auto-detect (`available_parallelism`), the
    // same as leaving the worker count to `--parallel`.
    let mut threads_given = false;
    let threads = match arg_value(&args, "--threads") {
        Some(t) => match t.parse::<usize>() {
            Ok(0) => {
                threads_given = true;
                None
            }
            Ok(n) => {
                threads_given = true;
                Some(n)
            }
            _ => {
                eprintln!("sqlcheck: --threads expects a non-negative integer, got '{t}'");
                std::process::exit(2);
            }
        },
        None => None,
    };
    // An explicit thread count (auto included) implies parallel execution.
    let parallel = args.iter().any(|a| a == "--parallel") || threads_given;
    let weights = match arg_value(&args, "--weights").unwrap_or("c1").to_ascii_lowercase().as_str()
    {
        "c2" => RankWeights::C2,
        _ => RankWeights::C1,
    };
    let inter_model = match arg_value(&args, "--rank-by") {
        Some("count") => InterQueryModel::ByApCount,
        _ => InterQueryModel::ByScore,
    };
    // --dialect pins the front door; leaving it off opts into
    // auto-detection (an explicit choice always suppresses the guess).
    let dialect_arg = arg_value(&args, "--dialect");
    let dialect = match dialect_arg {
        Some(name) => match Dialect::parse(name) {
            Some(d) => d,
            None => {
                eprintln!(
                    "sqlcheck: unknown dialect '{name}' (expected generic, postgres, \
                     mysql, or sqlite)"
                );
                std::process::exit(2);
            }
        },
        None => Dialect::Generic,
    };
    let detect_dialect = dialect_arg.is_none();

    let input = args
        .iter()
        .rev()
        .find(|a| !a.starts_with("--") && !is_flag_value(&args, a))
        .map(String::as_str)
        .unwrap_or("-");
    // Files are memory-mapped (Unix): the splitter reads the page cache
    // directly, so multi-GB dumps stream without a userspace copy.
    let sql = if input == "-" {
        match sqlcheck::input::read_stdin() {
            Ok(s) => s,
            Err(_) => {
                eprintln!("sqlcheck: failed to read stdin");
                std::process::exit(2);
            }
        }
    } else {
        match sqlcheck::input::read_script(input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sqlcheck: cannot read {input}: {e}");
                std::process::exit(2);
            }
        }
    };

    let mut tool = SqlCheck::new()
        .with_weights(weights)
        .with_inter_query_model(inter_model)
        .with_dialect(dialect)
        .with_dialect_detection(detect_dialect);
    if intra_only {
        tool = tool.with_detection(DetectionConfig::intra_only());
    }
    if cache {
        tool = tool.with_cache(sqlcheck::detect::DEFAULT_CACHE_CAPACITY);
    }
    // --parallel / --stats / --threads / --cache route through the batch
    // engine (identical detections; parse-once front-end, template dedup,
    // optional threading and incremental caching).
    let outcome = if parallel || stats || cache {
        let opts = BatchOptions {
            parallel,
            threads,
            dialect,
            detect_dialect,
            ..BatchOptions::default()
        };
        let w = tool.check_workload(&sql, &opts);
        if stats {
            let s = &w.stats;
            let resolved = w.outcome.context.dialect;
            eprintln!(
                "stats: dialect {} ({})",
                resolved,
                if dialect_arg.is_some() {
                    "explicit"
                } else if resolved == Dialect::Generic {
                    "default"
                } else {
                    "guessed"
                },
            );
            eprintln!(
                "stats: {} statement(s), {} unique template(s), {} unique text(s), \
                 {} cache hit(s), {} thread(s) ({} requested; 0 = auto)",
                s.statements,
                s.unique_templates,
                s.unique_texts,
                s.cache_hits,
                s.threads,
                s.requested_threads,
            );
            eprintln!(
                "stats: front-end fused split {}us, materialize {}us, parse {}us, \
                 annotate {}us, context {}us",
                s.split_micros,
                s.materialize_micros,
                s.parse_micros,
                s.annotate_micros,
                s.context_micros,
            );
            eprintln!(
                "stats: detect group {}us, intra {}us, fanout {}us, inter {}us, \
                 data {}us, total {}us",
                s.group_micros,
                s.intra_micros,
                s.fanout_micros,
                s.inter_micros,
                s.data_micros,
                s.total_micros,
            );
            eprintln!(
                "stats: worker busy max {}us, min {}us across {} worker(s)",
                s.worker_busy_max(),
                s.worker_busy_min(),
                s.worker_busy_micros.len(),
            );
            if cache {
                eprintln!(
                    "stats: incremental cache {} hit(s), {} miss(es), {} eviction(s) \
                     ({} table-granular, {} column-granular)",
                    s.incremental_hits,
                    s.incremental_misses,
                    s.incremental_evictions,
                    s.table_evictions,
                    s.column_evictions,
                );
                eprintln!(
                    "stats: unit memo inter {} reused / {} recomputed, \
                     data {} reused / {} recomputed",
                    s.inter_units_reused,
                    s.inter_units_recomputed,
                    s.data_units_reused,
                    s.data_units_recomputed,
                );
            }
            eprintln!(
                "stats: parse coverage {:.4} — {} degraded statement(s) across \
                 {} degraded unique text(s), {} isolated rule failure(s)",
                s.parse_coverage(),
                s.degraded_statements,
                s.degraded_uniques,
                s.rule_failures,
            );
            let kinds: Vec<String> = DiagKind::ALL
                .iter()
                .filter(|k| s.diag_counts[k.index()] > 0)
                .map(|k| format!("{} {}", k.name(), s.diag_counts[k.index()]))
                .collect();
            if !kinds.is_empty() {
                eprintln!("stats: diagnostics by kind: {}", kinds.join(", "));
            }
        }
        w.outcome
    } else {
        tool.check_script(&sql)
    };

    // --fail-on-degraded: exit 3 when any degradation diagnostic other
    // than the informational delimiter-fallback and dialect-guessed
    // notices was emitted — detection ran, but on reduced-fidelity
    // input. Takes precedence over the findings exit code (1).
    let degraded_exit = fail_on_degraded
        && outcome.diagnostics.iter().any(|d| {
            !matches!(
                d.kind,
                DiagKind::DelimiterFallbackSequential | DiagKind::DialectGuessed
            )
        });
    if degraded_exit && stats {
        for d in &outcome.diagnostics {
            eprintln!("degraded: {d}");
        }
    }

    if outcome.ranked().is_empty() {
        println!("no anti-patterns detected in {} statement(s)", outcome.context.len());
        finish(degraded_exit, false);
    }

    if summary {
        println!("{:<30} {:>6}", "anti-pattern", "count");
        for (kind, n) in outcome.report.by_kind() {
            println!("{:<30} {:>6}", kind.name(), n);
        }
        println!("{:<30} {:>6}", "total", outcome.report.detections.len());
        finish(degraded_exit, true);
    }

    for (i, (r, f)) in outcome.ranked().iter().zip(outcome.fixes()).enumerate() {
        // Per-occurrence source location: duplicate statements each point
        // at their own bytes, not the first occurrence's.
        let at = match r.detection.span {
            Some(s) => format!(" [bytes {s}]"),
            None => String::new(),
        };
        println!(
            "{:>3}. [{:.3}] {} ({}) @ {}{}",
            i + 1,
            r.score,
            r.detection.kind,
            r.detection.kind.category(),
            r.detection.locus,
            at
        );
        println!("     {}", r.detection.message);
        if no_fix {
            continue;
        }
        match &f.fix {
            Fix::Rewrite { fixed, .. } => println!("     fix: {fixed}"),
            Fix::SchemaChange { statements, impacted_queries } => {
                for s in statements {
                    println!("     fix: {s}");
                }
                for (idx, q) in impacted_queries {
                    println!("     impacted #{idx}: {q}");
                }
            }
            Fix::Textual { advice } => println!("     advice: {advice}"),
        }
    }
    // Exit code signals findings, like familiar linters.
    finish(degraded_exit, true);
}

/// Final exit: degraded input (3, under --fail-on-degraded) takes
/// precedence over findings (1); a clean run exits 0.
fn finish(degraded_exit: bool, found: bool) -> ! {
    std::process::exit(if degraded_exit {
        3
    } else if found {
        1
    } else {
        0
    })
}

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn is_flag_value(args: &[String], candidate: &String) -> bool {
    args.iter()
        .position(|a| a == candidate)
        .map(|i| {
            i > 0
                && matches!(
                    args[i - 1].as_str(),
                    "--weights" | "--rank-by" | "--threads" | "--dialect"
                )
        })
        .unwrap_or(false)
}

fn print_help() {
    println!(
        "sqlcheck — detect, rank, and fix SQL anti-patterns (SIGMOD 2020 reproduction)\n\n\
         usage: sqlcheck [--intra-only] [--weights c1|c2] [--rank-by count] \n\
                         [--no-fix] [--summary] [--parallel] [--threads N] \n\
                         [--stats] [--cache] [--dialect generic|postgres|mysql|sqlite] \n\
                         [--fail-on-degraded] [FILE|-]\n\n\
         Reads SQL from FILE (or stdin with '-'), prints ranked anti-patterns\n\
         with suggested fixes. Exits 1 when anti-patterns are found; with\n\
         --fail-on-degraded, exits 3 when any statement parsed degraded or a\n\
         rule unit was isolated after a panic."
    );
}
