//! Rule registry (§7, *Extensibility*).
//!
//! "A developer may add a new AP rule that implements the generic rule
//! interface (name, type, detection rule, ranking metrics, and repair
//! rule) and register it in the sqlcheck rule registry."

use crate::context::Context;
use crate::rank::ApMetrics;
use crate::report::Detection;

/// The generic rule interface.
pub trait CustomRule: Send + Sync {
    /// Rule name (for reports and debugging).
    fn name(&self) -> &str;
    /// Detection: inspect the context, emit detections.
    fn detect(&self, ctx: &Context) -> Vec<Detection>;
    /// Ranking metrics for the detections this rule emits.
    fn metrics(&self) -> ApMetrics {
        ApMetrics::NEUTRAL
    }
    /// Optional textual repair advice.
    fn repair(&self, _detection: &Detection) -> Option<String> {
        None
    }
}

/// A registry of custom rules, applied after the built-in phases.
#[derive(Default)]
pub struct RuleRegistry {
    rules: Vec<Box<dyn CustomRule>>,
}

impl RuleRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a rule.
    pub fn register(&mut self, rule: Box<dyn CustomRule>) {
        self.rules.push(rule);
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Run every registered rule.
    pub fn detect_all(&self, ctx: &Context) -> Vec<Detection> {
        self.rules.iter().flat_map(|r| r.detect(ctx)).collect()
    }

    /// Name of rule `i` (for diagnostics and reports).
    pub fn rule_name(&self, i: usize) -> &str {
        self.rules[i].name()
    }

    /// Run rule `i` alone — the per-unit entry point the pipeline uses to
    /// execute custom rules under panic isolation.
    pub fn detect_one(&self, i: usize, ctx: &Context) -> Vec<Detection> {
        self.rules[i].detect(ctx)
    }

    /// Find the repair advice for a detection, consulting rules in order.
    pub fn repair(&self, detection: &Detection) -> Option<String> {
        self.rules.iter().find_map(|r| r.repair(detection))
    }
}

impl std::fmt::Debug for RuleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.rules.iter().map(|r| r.name()).collect();
        f.debug_struct("RuleRegistry").field("rules", &names).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anti_pattern::AntiPatternKind;
    use crate::context::ContextBuilder;
    use crate::report::{DetectionSource, Locus};

    struct NoLimitRule;

    impl CustomRule for NoLimitRule {
        fn name(&self) -> &str {
            "select-without-limit"
        }

        fn detect(&self, ctx: &Context) -> Vec<Detection> {
            ctx.statements
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    if let sqlcheck_parser::ast::Statement::Select(sel) = &s.parsed.stmt {
                        if sel.limit.is_none() && sel.where_clause.is_none() {
                            return Some(Detection {
                                kind: AntiPatternKind::ColumnWildcard, // reuse a kind
                                locus: Locus::Statement { index: i },
                                message: "unbounded SELECT".into(),
                                source: DetectionSource::InterQuery,
                                span: None,
                            });
                        }
                    }
                    None
                })
                .collect()
        }

        fn repair(&self, _d: &Detection) -> Option<String> {
            Some("add a LIMIT or a WHERE clause".into())
        }
    }

    #[test]
    fn custom_rule_runs_and_repairs() {
        let mut reg = RuleRegistry::new();
        reg.register(Box::new(NoLimitRule));
        assert_eq!(reg.len(), 1);
        let ctx = ContextBuilder::new().add_script("SELECT a FROM t").build();
        let dets = reg.detect_all(&ctx);
        assert_eq!(dets.len(), 1);
        assert_eq!(reg.repair(&dets[0]).unwrap(), "add a LIMIT or a WHERE clause");
    }
}
