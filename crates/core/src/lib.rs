//! # sqlcheck
//!
//! Rust reproduction of *SQLCheck: Automated Detection and Diagnosis of
//! SQL Anti-Patterns* (Dintyala, Narechania, Arulraj — SIGMOD 2020).
//!
//! sqlcheck takes an application's SQL statements and, optionally, a
//! connection to its database, and produces a **ranked list of
//! anti-patterns with suggested fixes**:
//!
//! 1. [`detect`] (`ap-detect`) finds 27 anti-pattern kinds using
//!    intra-query, inter-query, and data analysis;
//! 2. [`rank`] (`ap-rank`) orders them with the weighted impact model of
//!    Fig 6/7 (read/write performance, maintainability, data
//!    amplification, data integrity, accuracy);
//! 3. [`fix`] (`ap-fix`) suggests rule-based query/schema transformations,
//!    falling back to context-tailored textual fixes.
//!
//! ## Quick start
//!
//! ```
//! use sqlcheck::find_anti_patterns;
//!
//! let results = find_anti_patterns("INSERT INTO Users VALUES (1, 'foo')");
//! assert!(results.iter().any(|d| d.kind.name() == "Implicit Columns"));
//! ```
//!
//! ## Batch detection (workload scale)
//!
//! Application logs contain millions of statements drawn from a few
//! hundred templates. [`SqlCheck::check_workload`] (and the lower-level
//! [`Detector::detect_batch`]) exploit that redundancy:
//!
//! * statements are **fingerprinted** ([`sqlcheck_parser::fingerprint`]):
//!   literals become `?` placeholders, literal lists collapse, keyword and
//!   bare-identifier case folds, whitespace/comments vanish — statements
//!   that differ only in bind values share a template;
//! * intra-query rules run **once per unique statement text** within each
//!   template group, and results fan back out to every occurrence with
//!   corrected loci (exact text, not the fingerprint alone, keys the
//!   result cache because some rules inspect literal values);
//! * all three detection phases run **in parallel** on one scoped
//!   worker-thread pool behind the `parallel` cargo feature (on by
//!   default; disable it for strictly single-threaded builds): intra-
//!   query rules per unique text, inter-query rules per rule, data-
//!   analysis rules per profiled table — each with a deterministic
//!   merge that preserves the sequential path's output order;
//! * every statement-locus [`Detection`] (and the fix derived from it)
//!   carries the byte [`Span`] of **its own** occurrence in the source
//!   script, even when duplicate texts share one parse tree.
//!
//! The front-end is parse-once: scripts are split and content-hashed at
//! the span level **before** parsing, so each unique statement text is
//! parsed and annotated exactly once and shared across duplicates via
//! `Arc`. Attaching [`SqlCheck::with_cache`] additionally persists
//! intra-query results across `check_workload` calls (keyed by text
//! hash, guarded by a config + schema epoch), so re-checking an edited
//! workload only pays for the statements whose text changed.
//!
//! The batch path returns byte-identical detections, in the same order,
//! as the sequential path — plus [`BatchStats`] instrumentation
//! (template/dedup counts, thread usage, per-phase front-end and
//! detection timings, cache counters).
//!
//! ```
//! use sqlcheck::{BatchOptions, SqlCheck};
//!
//! let mut script = String::new();
//! for i in 0..100 {
//!     script.push_str(&format!("SELECT * FROM Users WHERE id = {i};\n"));
//! }
//! let w = SqlCheck::new().check_workload(&script, &BatchOptions::default());
//! assert_eq!(w.stats.statements, 100);
//! assert_eq!(w.stats.unique_templates, 1);
//! assert!(!w.outcome.ranked().is_empty());
//! ```
//!
//! The full pipeline, with a database attached for data analysis:
//!
//! ```
//! use sqlcheck::{SqlCheck, RankWeights};
//! use sqlcheck_minidb::prelude::*;
//!
//! let mut db = Database::new();
//! db.create_table(
//!     TableSchema::new("Users")
//!         .column(Column::new("id", DataType::Int).not_null())
//!         .column(Column::new("role", DataType::Text))
//!         .primary_key(&["id"]),
//! ).unwrap();
//! for i in 0..100 {
//!     db.insert("Users", vec![Value::Int(i), Value::text(format!("R{}", i % 3))]).unwrap();
//! }
//!
//! let outcome = SqlCheck::new()
//!     .with_weights(RankWeights::C2)
//!     .with_database(db)
//!     .check_script("SELECT * FROM Users WHERE role = 'R1'");
//! assert!(!outcome.ranked().is_empty());
//! ```

#![warn(missing_docs)]

pub mod anti_pattern;
pub mod context;
pub mod detect;
pub mod fix;
pub mod input;
pub(crate) mod hashutil;
pub mod rank;
pub mod registry;
pub mod report;
pub mod session;

pub use anti_pattern::{AntiPatternKind, Category, MetricImpact};
pub use context::{
    Context, ContextBuilder, DataAnalysisConfig, FrontendOptions, FrontendStats,
};
pub use detect::{
    BatchOptions, BatchReport, BatchStats, CacheCounters, DetectionConfig, Detector,
    IncrementalCache, DEFAULT_CACHE_SHARDS,
};
pub use fix::{Fix, FixEngine, SuggestedFix};
pub use input::{read_script, ScriptInput};
pub use rank::{
    ApMetrics, InterQueryModel, MetricsTable, RankWeights, RankedDetection, Ranker, Severity,
};
pub use registry::{CustomRule, RuleRegistry};
pub use report::{Detection, DetectionSource, Locus, Report, Span};
pub use session::{CheckSession, Edit};
pub use sqlcheck_parser::diag::{DiagKind, Diagnostic, Limits};
pub use sqlcheck_parser::Dialect;

use sqlcheck_minidb::database::Database;

/// Detect anti-patterns in a SQL string — the paper's interactive-shell
/// entry point (`from sqlcheck.finder import find_anti_patterns`, §7).
pub fn find_anti_patterns(sql: &str) -> Vec<Detection> {
    let ctx = ContextBuilder::new().add_script(sql).build();
    Detector::default().detect(&ctx).detections
}

/// The result of a full sqlcheck run: the raw report, the ranked
/// detections, and the suggested fixes, plus the context for inspection.
///
/// Ranking and fixes are **lazy**: computed on first access
/// ([`CheckOutcome::ranked`] / [`CheckOutcome::fixes`]) and memoized.
/// Both are pure functions of the report and context, so laziness is
/// unobservable except in timing — a caller that only reads detections
/// never pays for fix synthesis, and a warm
/// [`CheckSession::recheck`](session::CheckSession::recheck) stays
/// proportional to the edit set instead of re-ranking and re-fixing
/// every detection in the workload on each edit.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The application context that was built.
    pub context: Context,
    /// The unranked detection report.
    pub report: Report,
    /// Degradation diagnostics: parse-time events (attributed to the
    /// first occurrence of each unique statement text), script-level
    /// events, and isolated rule failures. The pipeline always completes;
    /// these describe where output quality was reduced.
    pub diagnostics: Vec<Diagnostic>,
    /// The ranker that produced (or will lazily produce) the ranking.
    ranker: Ranker,
    ranked: std::sync::OnceLock<Vec<RankedDetection>>,
    fixes: std::sync::OnceLock<Vec<SuggestedFix>>,
}

impl CheckOutcome {
    /// Assemble an outcome with ranking and fixes pending.
    fn new(context: Context, report: Report, diagnostics: Vec<Diagnostic>, ranker: Ranker) -> Self {
        CheckOutcome {
            context,
            report,
            diagnostics,
            ranker,
            ranked: std::sync::OnceLock::new(),
            fixes: std::sync::OnceLock::new(),
        }
    }

    /// Ranked detections, highest impact first. Computed on first access
    /// and memoized.
    pub fn ranked(&self) -> &[RankedDetection] {
        self.ranked.get_or_init(|| self.ranker.rank(&self.report))
    }

    /// One suggested fix per ranked detection, in rank order. Computed
    /// on first access (forcing the ranking too) and memoized.
    pub fn fixes(&self) -> &[SuggestedFix] {
        self.fixes.get_or_init(|| {
            let ordered: Vec<Detection> =
                self.ranked().iter().map(|r| r.detection.clone()).collect();
            FixEngine.fix_all(&ordered, &self.context)
        })
    }

    /// Discard any memoized ranking/fixes (the report changed).
    pub(crate) fn invalidate_derived(&mut self) {
        self.ranked = std::sync::OnceLock::new();
        self.fixes = std::sync::OnceLock::new();
    }

    /// Render a human-readable summary (ranked, with fixes).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, (r, f)) in self.ranked().iter().zip(self.fixes()).enumerate() {
            out.push_str(&format!(
                "{:>3}. [{:.3}] {} @ {}\n     {}\n",
                i + 1,
                r.score,
                r.detection.kind,
                r.detection.locus,
                r.detection.message
            ));
            match &f.fix {
                Fix::Rewrite { fixed, .. } => {
                    out.push_str(&format!("     fix: {fixed}\n"));
                }
                Fix::SchemaChange { statements, impacted_queries } => {
                    for s in statements {
                        out.push_str(&format!("     fix: {s}\n"));
                    }
                    for (idx, q) in impacted_queries {
                        out.push_str(&format!("     impacted #{idx}: {q}\n"));
                    }
                }
                Fix::Textual { advice } => {
                    out.push_str(&format!("     advice: {advice}\n"));
                }
            }
        }
        out
    }
}

/// The top-level toolchain facade (Fig 4): configure, attach inputs, run.
///
/// The facade is reusable: [`SqlCheck::check_script`] and
/// [`SqlCheck::check_workload`] borrow it, so the same instance can check
/// many scripts — which is what makes the incremental detection cache
/// ([`SqlCheck::with_cache`]) useful across re-checks of an evolving
/// workload.
pub struct SqlCheck {
    detector: Detector,
    ranker: Ranker,
    registry: RuleRegistry,
    database: Option<std::sync::Arc<Database>>,
    data_cfg: DataAnalysisConfig,
    cache: Option<std::sync::Arc<IncrementalCache>>,
    dialect: Dialect,
    detect_dialect: bool,
}

impl Default for SqlCheck {
    fn default() -> Self {
        Self::new()
    }
}

impl SqlCheck {
    /// Default-configured toolchain.
    pub fn new() -> Self {
        SqlCheck {
            detector: Detector::default(),
            ranker: Ranker::default(),
            registry: RuleRegistry::new(),
            database: None,
            data_cfg: DataAnalysisConfig::default(),
            cache: None,
            dialect: Dialect::Generic,
            detect_dialect: false,
        }
    }

    /// Select the SQL dialect the front door (lexer → splitter → parser)
    /// applies. The default, [`Dialect::Generic`], is the historical
    /// tolerant union and is byte-identical to the pre-dialect
    /// behaviour. Applies to [`SqlCheck::check_script`]; for
    /// [`SqlCheck::check_workload`] it is the default that an explicit
    /// [`BatchOptions::dialect`] overrides.
    pub fn with_dialect(mut self, dialect: Dialect) -> Self {
        self.dialect = dialect;
        self
    }

    /// Enable dialect auto-detection ([`Dialect::detect`]): when the
    /// configured dialect is [`Dialect::Generic`], the first script's
    /// contents may switch the front door, recorded as a
    /// [`DiagKind::DialectGuessed`] diagnostic. The CLI turns this on
    /// whenever no explicit `--dialect` is given; library callers opt in
    /// here.
    pub fn with_dialect_detection(mut self, on: bool) -> Self {
        self.detect_dialect = on;
        self
    }

    /// Use a custom detection configuration.
    pub fn with_detection(mut self, cfg: DetectionConfig) -> Self {
        self.detector = Detector::new(cfg);
        self
    }

    /// Restrict detection to intra-query analysis (the paper's first
    /// evaluation configuration).
    pub fn intra_only(mut self) -> Self {
        self.detector = Detector::new(DetectionConfig::intra_only());
        self
    }

    /// Use custom ranking weights (Fig 7a's C1/C2 or bespoke).
    pub fn with_weights(mut self, weights: RankWeights) -> Self {
        self.ranker.weights = weights;
        self
    }

    /// Choose the inter-query ranking model.
    pub fn with_inter_query_model(mut self, model: InterQueryModel) -> Self {
        self.ranker.inter_model = model;
        self
    }

    /// Override metric rows with locally calibrated measurements.
    pub fn with_metrics(mut self, metrics: MetricsTable) -> Self {
        self.ranker.metrics = metrics;
        self
    }

    /// Attach a database for data analysis. The database is held behind
    /// an `Arc` and shared (not copied) across repeated checks.
    pub fn with_database(mut self, db: Database) -> Self {
        self.database = Some(std::sync::Arc::new(db));
        self
    }

    /// Configure the data analyzer (sampling, thresholds).
    pub fn with_data_config(mut self, cfg: DataAnalysisConfig) -> Self {
        self.data_cfg = cfg;
        self
    }

    /// Register a custom rule (§7 extensibility).
    pub fn with_rule(mut self, rule: Box<dyn CustomRule>) -> Self {
        self.registry.register(rule);
        self
    }

    /// Attach an incremental detection cache (bounded to `capacity`
    /// unique statement texts). Subsequent [`SqlCheck::check_workload`]
    /// calls on this instance reuse intra-query results for statements
    /// whose text is unchanged since an earlier call — a workload
    /// re-check after small edits only re-analyses the edited statements.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(std::sync::Arc::new(IncrementalCache::new(capacity)));
        self
    }

    /// Attach an **externally shared** incremental cache. The cache is
    /// lock-striped by content-hash shard, so many `SqlCheck` instances —
    /// one per session/thread — can point at the same `Arc` and
    /// concurrently warm each other's re-checks without contending on a
    /// single structure (the lookup path takes shared locks only). All
    /// sessions must check under the same detection config and schema:
    /// the cache's validity epoch is global, and a config/schema switch
    /// by one session invalidates affected entries for all.
    pub fn with_shared_cache(mut self, cache: std::sync::Arc<IncrementalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Cumulative incremental-cache counters, when a cache is attached.
    pub fn cache_counters(&self) -> Option<CacheCounters> {
        self.cache.as_ref().map(|c| c.counters())
    }

    /// Run every registered custom rule, each as its own panic-isolated
    /// unit: a panicking rule contributes a `RuleFailed` diagnostic and
    /// no detections, while every other rule's output is unaffected.
    /// Units run in registration order on the calling thread, so output
    /// is deterministic and identical to the pre-isolation behaviour
    /// whenever no rule panics.
    fn run_registry(&self, context: &Context, diagnostics: &mut Vec<Diagnostic>) -> Vec<Detection> {
        let run = detect::schedule::run_units_weighted(self.registry.len(), 1, |_| 1, &|i| {
            self.registry.detect_one(i, context)
        });
        let mut extra = Vec::new();
        for (i, out) in run.results.into_iter().enumerate() {
            match out {
                Ok(d) => extra.extend(d),
                Err(p) => diagnostics.push(Diagnostic::new(
                    DiagKind::RuleFailed,
                    format!(
                        "custom rule '{}' panicked: {}",
                        self.registry.rule_name(i),
                        p.message
                    ),
                )),
            }
        }
        extra
    }

    /// Run the full pipeline over a SQL script.
    pub fn check_script(&self, script: &str) -> CheckOutcome {
        let frontend = FrontendOptions {
            dialect: self.dialect,
            detect_dialect: self.detect_dialect,
            ..FrontendOptions::default()
        };
        let mut builder = ContextBuilder::new().with_frontend(frontend).add_script(script);
        if let Some(db) = &self.database {
            builder = builder.with_shared_database(db.clone(), self.data_cfg.clone());
        }
        let context = builder.build();
        let mut diagnostics = parse_diagnostics(&context);
        let mut report = self.detector.detect(&context);
        // Custom-rule detections get their spans attached separately: the
        // detector's own detections already carry absolute spans (and a
        // span a custom rule set itself is absolute and kept as-is).
        let mut extra = self.run_registry(&context, &mut diagnostics);
        detect::attach_default_spans(&mut extra, &context);
        report.detections.extend(extra);
        CheckOutcome::new(context, report, diagnostics, self.ranker.clone())
    }

    /// Run the full pipeline over a large workload using the parse-once
    /// front-end and the batch detection engine: fingerprinting before
    /// parsing, per-unique-text parse/annotate/rule execution, (with the
    /// `parallel` feature) data-parallel front-end and intra-query
    /// analysis, and — when a cache is attached — incremental reuse of
    /// detection results across calls. Produces the same detections as
    /// [`SqlCheck::check_script`] plus [`BatchStats`] instrumentation
    /// (batch dedup, per-phase front-end timings, cache counters).
    pub fn check_workload(&self, script: &str, opts: &BatchOptions) -> WorkloadOutcome {
        // Explicit per-call dialect options win; an untouched default
        // falls back to the toolchain-level setting, so a
        // `with_dialect(...)` facade behaves the same on both entry
        // points.
        let (dialect, detect_dialect) =
            if opts.dialect == Dialect::Generic && !opts.detect_dialect {
                (self.dialect, self.detect_dialect)
            } else {
                (opts.dialect, opts.detect_dialect)
            };
        let frontend = FrontendOptions {
            dedup: true,
            parallel: opts.parallel,
            threads: opts.threads,
            limits: opts.limits,
            dialect,
            detect_dialect,
        };
        let mut builder =
            ContextBuilder::new().with_frontend(frontend).add_script(script);
        if let Some(db) = &self.database {
            builder = builder.with_shared_database(db.clone(), self.data_cfg.clone());
        }
        let (context, fe_stats) = builder.build_with_stats();
        let batch = self.detector.detect_batch_with(&context, opts, self.cache.as_deref());
        let mut report = batch.report;
        let mut stats = batch.stats;
        let mut diagnostics = parse_diagnostics(&context);
        diagnostics.extend(batch.diagnostics);
        let failures_before = diagnostics.len();
        let mut extra = self.run_registry(&context, &mut diagnostics);
        let registry_failures = diagnostics.len() - failures_before;
        stats.rule_failures += registry_failures;
        stats.diag_counts[DiagKind::RuleFailed.index()] += registry_failures;
        detect::attach_default_spans(&mut extra, &context);
        report.detections.extend(extra);
        stats.absorb_frontend(&fe_stats);
        WorkloadOutcome {
            outcome: CheckOutcome::new(context, report, diagnostics, self.ranker.clone()),
            stats,
        }
    }
}

/// Collect the degradation diagnostics carried by a built context:
/// script-level events first, then each unique statement text's parse
/// diagnostics attributed to its **first occurrence** index (duplicates
/// share one parse, so per-occurrence repetition would only amplify
/// counts without adding information).
fn parse_diagnostics(ctx: &Context) -> Vec<Diagnostic> {
    let mut out = ctx.diagnostics.clone();
    let mut seen = std::collections::HashSet::new();
    for (idx, s) in ctx.statements.iter().enumerate() {
        if seen.insert(s.text_hash) {
            out.extend(s.diags.iter().map(|d| d.at(idx)));
        }
    }
    out
}

/// A [`CheckOutcome`] plus the batch-engine instrumentation.
#[derive(Debug)]
pub struct WorkloadOutcome {
    /// The regular pipeline outcome (context, report, ranking, fixes).
    pub outcome: CheckOutcome,
    /// Batch instrumentation: dedup effectiveness, thread usage, timings.
    pub stats: BatchStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell_entry_point_matches_paper_example() {
        // §7: find_anti_patterns("INSERT INTO Users VALUES (1, 'foo')")
        let results = find_anti_patterns("INSERT INTO Users VALUES (1, 'foo')");
        assert!(results.iter().any(|d| d.kind == AntiPatternKind::ImplicitColumns));
    }

    #[test]
    fn pipeline_orders_by_impact_and_fixes_everything() {
        let outcome = SqlCheck::new().check_script(
            "CREATE TABLE t (a INT, price FLOAT);\
             SELECT * FROM t WHERE price > 1;",
        );
        assert!(!outcome.ranked().is_empty());
        assert_eq!(outcome.ranked().len(), outcome.fixes().len());
        for w in outcome.ranked().windows(2) {
            assert!(w[0].score >= w[1].score, "ranked descending");
        }
        assert!(!outcome.summary().is_empty());
    }

    #[test]
    fn weights_change_ordering() {
        // A script with both an Index Underuse and an Enumerated Types AP —
        // Example 6's scenario end-to-end.
        let sql = "CREATE TABLE u (id INT PRIMARY KEY, zone TEXT, role TEXT, \
                     CONSTRAINT rc CHECK (role IN ('R1','R2','R3')));\
                   SELECT * FROM u WHERE zone = 'Z1';";
        let pick_first = |w: RankWeights| {
            let outcome = SqlCheck::new().with_weights(w).check_script(sql);
            outcome
                .ranked()
                .iter()
                .map(|r| r.detection.kind)
                .find(|k| {
                    matches!(
                        k,
                        AntiPatternKind::IndexUnderuse | AntiPatternKind::EnumeratedTypes
                    )
                })
                .unwrap()
        };
        assert_eq!(pick_first(RankWeights::C1), AntiPatternKind::IndexUnderuse);
        assert_eq!(pick_first(RankWeights::C2), AntiPatternKind::EnumeratedTypes);
    }
}
