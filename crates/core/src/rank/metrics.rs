//! Per-AP impact metrics (§5.1).
//!
//! `ap-rank` collects six metrics per AP: read performance (RP), write
//! performance (WP), maintainability (M), data amplification (DA), data
//! integrity (DI), and accuracy (A). RP/WP are speedup factors measured by
//! fixing the AP and re-running the standard query types; M counts the
//! refactoring queries saved; DA is the storage shrink factor; DI and A
//! are binary.
//!
//! The default table below is the model "trained on data collected from
//! previous deployments" (§1): RP/WP come from the paper's own measured
//! numbers (Fig 3, Fig 8, §8.2) where it reports them, and from the
//! Table 1 ✓ marks otherwise. [`crate::rank::model::Calibrator`] can
//! overwrite any row with locally measured values.

use crate::anti_pattern::AntiPatternKind;

/// The six ranking metrics for one AP occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApMetrics {
    /// Read-performance speedup factor from fixing the AP (1.0 = none).
    pub read_perf: f64,
    /// Write-performance speedup factor from fixing the AP.
    pub write_perf: f64,
    /// Maintainability: number of extra statements a representative
    /// refactoring task costs while the AP is present.
    pub maintainability: f64,
    /// Data amplification: storage shrink factor available by fixing.
    pub data_amplification: f64,
    /// Data integrity affected (binary).
    pub data_integrity: bool,
    /// Accuracy affected (binary).
    pub accuracy: bool,
}

impl ApMetrics {
    /// A neutral row (no impact).
    pub const NEUTRAL: ApMetrics = ApMetrics {
        read_perf: 1.0,
        write_perf: 1.0,
        maintainability: 0.0,
        data_amplification: 1.0,
        data_integrity: false,
        accuracy: false,
    };
}

/// Default metric table. Sources, per AP:
/// * Multi-Valued Attribute — Fig 3: lookups 636×, joins 256× (reads).
/// * Index Overuse — Fig 8a: UPDATE 10× slower with redundant indexes.
/// * Index Underuse — Fig 8b: grouped aggregate 1.3× (reads).
/// * No Foreign Key — Fig 8d–f: FK-supporting index 142× on UPDATE;
///   integrity/maintainability dominated.
/// * Enumerated Types — Fig 8g–h: >1000× UPDATE / INSERT; Fig 7b rows use
///   WP > 10×, M = 2, DA = 1.
/// * Others — derived from the Table 1 ✓ marks with conservative factors.
pub fn default_metrics(kind: AntiPatternKind) -> ApMetrics {
    use AntiPatternKind::*;
    match kind {
        MultiValuedAttribute => ApMetrics {
            read_perf: 636.0,
            write_perf: 5.0,
            maintainability: 3.0,
            data_amplification: 1.5,
            data_integrity: true,
            accuracy: true,
        },
        NoPrimaryKey => ApMetrics {
            read_perf: 10.0,
            write_perf: 1.0,
            maintainability: 2.0,
            data_amplification: 0.9, // fixing *adds* an index (DA ↑)
            data_integrity: true,
            accuracy: false,
        },
        NoForeignKey => ApMetrics {
            read_perf: 1.1,
            write_perf: 142.0,
            maintainability: 3.0,
            data_amplification: 1.0,
            data_integrity: true,
            accuracy: false,
        },
        GenericPrimaryKey => ApMetrics {
            maintainability: 1.0,
            ..ApMetrics::NEUTRAL
        },
        DataInMetadata => ApMetrics {
            read_perf: 2.0,
            write_perf: 1.5,
            maintainability: 4.0,
            data_amplification: 1.3,
            data_integrity: true,
            accuracy: true,
        },
        AdjacencyList => ApMetrics {
            read_perf: 1.1, // paper §8.5: 5× on PostgreSQL v9, 1.1× on v11
            ..ApMetrics::NEUTRAL
        },
        GodTable => ApMetrics {
            read_perf: 1.5,
            maintainability: 3.0,
            ..ApMetrics::NEUTRAL
        },
        RoundingErrors => ApMetrics { accuracy: true, ..ApMetrics::NEUTRAL },
        EnumeratedTypes => ApMetrics {
            read_perf: 1.0,
            write_perf: 1000.0, // Fig 8g: 1314s → 0.003s
            maintainability: 2.0,
            data_amplification: 1.5,
            data_integrity: false,
            accuracy: false,
        },
        ExternalDataStorage => ApMetrics {
            maintainability: 2.0,
            data_integrity: true,
            accuracy: true,
            ..ApMetrics::NEUTRAL
        },
        IndexOveruse => ApMetrics {
            read_perf: 1.0,
            write_perf: 10.0, // Fig 8a
            maintainability: 1.0,
            data_amplification: 1.3,
            data_integrity: false,
            accuracy: false,
        },
        IndexUnderuse => ApMetrics {
            read_perf: 1.5, // Fig 7b row: Srp = 1.5x
            write_perf: 1.0,
            maintainability: 0.0,
            data_amplification: 0.9,
            data_integrity: false,
            accuracy: false,
        },
        CloneTable => ApMetrics {
            read_perf: 2.0,
            write_perf: 1.0,
            maintainability: 4.0,
            data_amplification: 1.0,
            data_integrity: true,
            accuracy: true,
        },
        ColumnWildcard => ApMetrics {
            read_perf: 1.3,
            accuracy: true,
            ..ApMetrics::NEUTRAL
        },
        ConcatenateNulls => ApMetrics { accuracy: true, ..ApMetrics::NEUTRAL },
        OrderingByRand => ApMetrics { read_perf: 20.0, ..ApMetrics::NEUTRAL },
        PatternMatching => ApMetrics { read_perf: 100.0, ..ApMetrics::NEUTRAL },
        ImplicitColumns => ApMetrics {
            maintainability: 2.0,
            data_integrity: true,
            ..ApMetrics::NEUTRAL
        },
        DistinctJoin => ApMetrics {
            read_perf: 3.0,
            maintainability: 1.0,
            ..ApMetrics::NEUTRAL
        },
        TooManyJoins => ApMetrics { read_perf: 5.0, ..ApMetrics::NEUTRAL },
        ReadablePassword => ApMetrics { data_integrity: true, ..ApMetrics::NEUTRAL },
        MissingTimezone => ApMetrics { accuracy: true, ..ApMetrics::NEUTRAL },
        IncorrectDataType => ApMetrics {
            read_perf: 2.0,
            data_amplification: 1.5,
            ..ApMetrics::NEUTRAL
        },
        DenormalizedTable => ApMetrics {
            read_perf: 1.5,
            data_amplification: 2.0,
            ..ApMetrics::NEUTRAL
        },
        InformationDuplication => ApMetrics {
            maintainability: 2.0,
            data_integrity: true,
            accuracy: true,
            ..ApMetrics::NEUTRAL
        },
        RedundantColumn => ApMetrics {
            data_amplification: 1.2,
            ..ApMetrics::NEUTRAL
        },
        NoDomainConstraint => ApMetrics {
            maintainability: 1.0,
            data_amplification: 1.1,
            data_integrity: true,
            ..ApMetrics::NEUTRAL
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_metrics() {
        for k in AntiPatternKind::ALL {
            let m = default_metrics(k);
            assert!(m.read_perf >= 0.0 && m.write_perf >= 0.0);
        }
    }

    #[test]
    fn fig7b_rows_match() {
        // Index Underuse: Srp input 1.5x, everything else neutral.
        let iu = default_metrics(AntiPatternKind::IndexUnderuse);
        assert_eq!(iu.read_perf, 1.5);
        assert_eq!(iu.write_perf, 1.0);
        assert_eq!(iu.maintainability, 0.0);
        // Enumerated Types: WP > 10x, M = 2, DA present.
        let et = default_metrics(AntiPatternKind::EnumeratedTypes);
        assert!(et.write_perf > 10.0);
        assert_eq!(et.maintainability, 2.0);
        assert!(et.data_amplification > 1.0);
    }

    #[test]
    fn table1_alignment_spot_checks() {
        // Rounding Errors affects only accuracy.
        let r = default_metrics(AntiPatternKind::RoundingErrors);
        assert!(r.accuracy && !r.data_integrity && r.read_perf == 1.0);
        // MVA affects everything.
        let m = default_metrics(AntiPatternKind::MultiValuedAttribute);
        assert!(m.accuracy && m.data_integrity && m.read_perf > 100.0);
    }
}
