//! The ranking model (§5.2, Fig 6 & Fig 7).
//!
//! Scoring functions (Fig 6):
//!
//! ```text
//! Srp(x), Swp(x), Sm(x) = min(1, x/5)
//! Sda(x)               = min(1, x/8)
//! Sdi(x), Sa(x)        = x          (x ∈ {0, 1})
//! score = Wrp·Srp(RP) + Wwp·Swp(WP) + Wm·Sm(M)
//!       + Wda·Sda(DA) + Wdi·Sdi(DI) + Wa·Sa(A)
//! ```
//!
//! Metric inputs are normalised the way Fig 7b presents them: a speedup of
//! `x`× enters as `x` when the AP actually affects the metric and as `0`
//! when it does not (neutral speedup 1.0 → input 0).

use crate::anti_pattern::AntiPatternKind;
use crate::rank::metrics::{default_metrics, ApMetrics};
use crate::report::{Detection, Report};
use std::collections::BTreeMap;

/// Weight vector for the six metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankWeights {
    /// Read performance weight.
    pub wrp: f64,
    /// Write performance weight.
    pub wwp: f64,
    /// Maintainability weight.
    pub wm: f64,
    /// Data amplification weight.
    pub wda: f64,
    /// Data integrity weight.
    pub wdi: f64,
    /// Accuracy weight.
    pub wa: f64,
}

impl RankWeights {
    /// Fig 7a configuration **C1**: read-heavy analytical workloads.
    pub const C1: RankWeights =
        RankWeights { wrp: 0.7, wwp: 0.15, wm: 0.05, wda: 0.04, wdi: 0.02, wa: 0.02 };

    /// Fig 7a configuration **C2**: hybrid transactional/analytical.
    pub const C2: RankWeights =
        RankWeights { wrp: 0.4, wwp: 0.4, wm: 0.1, wda: 0.04, wdi: 0.02, wa: 0.02 };

    /// Custom weights (normalised by the caller if desired).
    pub fn custom(wrp: f64, wwp: f64, wm: f64, wda: f64, wdi: f64, wa: f64) -> Self {
        RankWeights { wrp, wwp, wm, wda, wdi, wa }
    }
}

/// `min(1, x/5)` — the Srp/Swp/Sm scoring function of Fig 6.
pub fn s5(x: f64) -> f64 {
    (x / 5.0).min(1.0)
}

/// `min(1, x/8)` — the Sda scoring function of Fig 6.
pub fn s8(x: f64) -> f64 {
    (x / 8.0).min(1.0)
}

/// Normalise a speedup factor into a Fig 7b-style metric input: factors at
/// or below 1 (no impact) become 0.
fn speedup_input(factor: f64) -> f64 {
    if factor <= 1.0 {
        0.0
    } else {
        factor
    }
}

/// Normalise a storage shrink factor: 1.5× shrink enters as 1.0 (the Fig
/// 7b Enumerated Types row), no shrink as 0.
fn amplification_input(factor: f64) -> f64 {
    if factor <= 1.0 {
        0.0
    } else {
        (factor - 1.0) * 2.0
    }
}

/// Compute the Fig 6 impact score for one metric row.
pub fn score(metrics: &ApMetrics, w: &RankWeights) -> f64 {
    w.wrp * s5(speedup_input(metrics.read_perf))
        + w.wwp * s5(speedup_input(metrics.write_perf))
        + w.wm * s5(metrics.maintainability)
        + w.wda * s8(amplification_input(metrics.data_amplification))
        + w.wdi * if metrics.data_integrity { 1.0 } else { 0.0 }
        + w.wa * if metrics.accuracy { 1.0 } else { 0.0 }
}

/// The metrics table the ranker consults: paper defaults, overridable with
/// locally calibrated measurements ("as new performance data is collected
/// over time, we update the ranking model", §5.2).
#[derive(Debug, Clone, Default)]
pub struct MetricsTable {
    overrides: BTreeMap<AntiPatternKind, ApMetrics>,
}

impl MetricsTable {
    /// Table with paper defaults only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override a row with locally measured metrics.
    pub fn set(&mut self, kind: AntiPatternKind, metrics: ApMetrics) {
        self.overrides.insert(kind, metrics);
    }

    /// Record a measured read/write speedup for a kind, keeping the other
    /// metric components at their defaults.
    pub fn calibrate_performance(
        &mut self,
        kind: AntiPatternKind,
        read_speedup: f64,
        write_speedup: f64,
    ) {
        let mut m = self.get(kind);
        m.read_perf = read_speedup;
        m.write_perf = write_speedup;
        self.overrides.insert(kind, m);
    }

    /// The effective metrics for a kind.
    pub fn get(&self, kind: AntiPatternKind) -> ApMetrics {
        self.overrides.get(&kind).copied().unwrap_or_else(|| default_metrics(kind))
    }
}

/// Coarse severity bucket derived from the impact score, used by the
/// reporting workflow of §8.4 ("we do not report low severity APs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Score < 0.05 — informational.
    Low,
    /// Score in [0.05, 0.2).
    Medium,
    /// Score ≥ 0.2 — worth reporting upstream.
    High,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
        })
    }
}

/// A detection with its computed impact score.
#[derive(Debug, Clone)]
pub struct RankedDetection {
    /// The detection.
    pub detection: Detection,
    /// The metric row used.
    pub metrics: ApMetrics,
    /// The Fig 6 score.
    pub score: f64,
}

impl RankedDetection {
    /// Severity bucket for this detection.
    pub fn severity(&self) -> Severity {
        if self.score >= 0.2 {
            Severity::High
        } else if self.score >= 0.05 {
            Severity::Medium
        } else {
            Severity::Low
        }
    }
}

/// How the inter-query component orders queries (§5.2: the developer can
/// choose one of two models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterQueryModel {
    /// Queries with more APs rank higher.
    ByApCount,
    /// Queries rank by summed impact score (default).
    #[default]
    ByScore,
}

/// The ranker (`ap-rank`).
#[derive(Debug, Clone)]
pub struct Ranker {
    /// Metric weights.
    pub weights: RankWeights,
    /// Metrics table (defaults + calibration).
    pub metrics: MetricsTable,
    /// Inter-query ordering model.
    pub inter_model: InterQueryModel,
}

impl Default for Ranker {
    fn default() -> Self {
        Ranker {
            weights: RankWeights::C1,
            metrics: MetricsTable::new(),
            inter_model: InterQueryModel::ByScore,
        }
    }
}

impl Ranker {
    /// Ranker with explicit weights.
    pub fn with_weights(weights: RankWeights) -> Self {
        Ranker { weights, ..Default::default() }
    }

    /// Rank all detections in a report, highest impact first. Ties break
    /// on catalog order for determinism.
    pub fn rank(&self, report: &Report) -> Vec<RankedDetection> {
        let mut ranked: Vec<RankedDetection> = report
            .detections
            .iter()
            .map(|d| {
                let metrics = self.metrics.get(d.kind);
                RankedDetection {
                    detection: d.clone(),
                    metrics,
                    score: score(&metrics, &self.weights),
                }
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.detection.kind.cmp(&b.detection.kind))
        });
        ranked
    }

    /// Inter-query ranking: order statement indices by AP count or summed
    /// score (§5.2's two models). Returns `(statement index, weight)`
    /// pairs, highest first.
    pub fn rank_queries(&self, report: &Report) -> Vec<(usize, f64)> {
        let mut per_query: BTreeMap<usize, f64> = BTreeMap::new();
        for d in &report.detections {
            let Some(idx) = d.statement_index() else { continue };
            let w = match self.inter_model {
                InterQueryModel::ByApCount => 1.0,
                InterQueryModel::ByScore => score(&self.metrics.get(d.kind), &self.weights),
            };
            *per_query.entry(idx).or_default() += w;
        }
        let mut v: Vec<(usize, f64)> = per_query.into_iter().collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{DetectionSource, Locus};

    /// Fig 7b metric rows, exactly as the paper presents them.
    fn index_underuse_row() -> ApMetrics {
        ApMetrics {
            read_perf: 1.5,
            write_perf: 1.0,
            maintainability: 0.0,
            data_amplification: 1.0,
            data_integrity: false,
            accuracy: false,
        }
    }

    fn enumerated_types_row() -> ApMetrics {
        ApMetrics {
            read_perf: 1.0,
            write_perf: 11.0, // ">10x"
            maintainability: 2.0,
            data_amplification: 1.5, // enters as Sda input 1
            data_integrity: false,
            accuracy: false,
        }
    }

    #[test]
    fn example6_config_c1_prioritises_index_underuse() {
        // Paper: C1 ranks Index Underuse (0.21) above Enumerated Types
        // (0.175).
        let iu = score(&index_underuse_row(), &RankWeights::C1);
        let et = score(&enumerated_types_row(), &RankWeights::C1);
        assert!((iu - 0.21).abs() < 1e-9, "index underuse C1 score = {iu}");
        assert!((et - 0.175).abs() < 1e-3, "enumerated types C1 score = {et}");
        assert!(iu > et);
    }

    #[test]
    fn example6_config_c2_flips_the_order() {
        // Paper: C2 ranks Enumerated Types (≈0.47) above Index Underuse
        // (0.12).
        let iu = score(&index_underuse_row(), &RankWeights::C2);
        let et = score(&enumerated_types_row(), &RankWeights::C2);
        assert!((iu - 0.12).abs() < 1e-9, "index underuse C2 score = {iu}");
        assert!(et > 0.4 && et < 0.5, "enumerated types C2 score = {et}");
        assert!(et > iu);
    }

    #[test]
    fn scoring_functions_saturate() {
        assert_eq!(s5(10.0), 1.0);
        assert_eq!(s5(2.5), 0.5);
        assert_eq!(s8(8.0), 1.0);
        assert_eq!(s8(4.0), 0.5);
    }

    #[test]
    fn neutral_metrics_score_zero() {
        assert_eq!(score(&ApMetrics::NEUTRAL, &RankWeights::C1), 0.0);
    }

    fn det(kind: AntiPatternKind, idx: usize) -> Detection {
        Detection {
            kind,
            locus: Locus::Statement { index: idx },
            message: "".into(),
            source: DetectionSource::IntraQuery,
            span: None,
        }
    }

    #[test]
    fn rank_orders_by_score_desc() {
        let mut report = Report::default();
        report.detections.push(det(AntiPatternKind::RoundingErrors, 0)); // accuracy only
        report.detections.push(det(AntiPatternKind::MultiValuedAttribute, 1)); // huge RP
        let ranked = Ranker::default().rank(&report);
        assert_eq!(ranked[0].detection.kind, AntiPatternKind::MultiValuedAttribute);
        assert!(ranked[0].score > ranked[1].score);
    }

    #[test]
    fn calibration_overrides_defaults() {
        let mut ranker = Ranker::default();
        ranker.metrics.calibrate_performance(AntiPatternKind::RoundingErrors, 50.0, 1.0);
        let m = ranker.metrics.get(AntiPatternKind::RoundingErrors);
        assert_eq!(m.read_perf, 50.0);
        assert!(m.accuracy, "non-performance components keep their defaults");
    }

    #[test]
    fn inter_query_models_differ() {
        let mut report = Report::default();
        // statement 0: two low-impact APs; statement 1: one high-impact AP.
        report.detections.push(det(AntiPatternKind::RoundingErrors, 0));
        report.detections.push(det(AntiPatternKind::MissingTimezone, 0));
        report.detections.push(det(AntiPatternKind::MultiValuedAttribute, 1));

        let by_count = Ranker {
            inter_model: InterQueryModel::ByApCount,
            ..Default::default()
        };
        assert_eq!(by_count.rank_queries(&report)[0].0, 0, "more APs wins by count");

        let by_score = Ranker::default();
        assert_eq!(by_score.rank_queries(&report)[0].0, 1, "higher impact wins by score");
    }

    #[test]
    fn severity_buckets() {
        let mk = |score: f64| RankedDetection {
            detection: det(AntiPatternKind::GodTable, 0),
            metrics: ApMetrics::NEUTRAL,
            score,
        };
        assert_eq!(mk(0.01).severity(), Severity::Low);
        assert_eq!(mk(0.1).severity(), Severity::Medium);
        assert_eq!(mk(0.5).severity(), Severity::High);
        assert!(Severity::High > Severity::Low);
    }

    #[test]
    fn custom_weights() {
        let w = RankWeights::custom(0.0, 0.0, 0.0, 0.0, 1.0, 0.0);
        let m = ApMetrics { data_integrity: true, ..ApMetrics::NEUTRAL };
        assert_eq!(score(&m, &w), 1.0);
    }
}
