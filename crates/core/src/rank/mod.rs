//! `ap-rank`: ordering detected anti-patterns by estimated impact (§5).

pub mod metrics;
pub mod model;

pub use metrics::{default_metrics, ApMetrics};
pub use model::{
    score, InterQueryModel, MetricsTable, RankWeights, RankedDetection, Ranker, Severity,
};
