//! Delta-based warm re-checks: a retained [`CheckSession`] whose
//! [`CheckSession::recheck`] cost is proportional to the **edit set**,
//! not the workload size.
//!
//! A cold [`SqlCheck::check_workload`] re-lexes, re-splits, re-parses,
//! and re-profiles the whole script even when one statement changed; at
//! workload scale the front-end dominates, so a warm re-check through
//! the cold entry point barely beats a cold one. The session keeps every
//! phase's retained form and patches it in place:
//!
//! * **edit** — the script is spliced in one pass; only the replacement
//!   texts are re-split/parsed/annotated (new unique texts only — an
//!   edit that revives a known text costs a hash lookup). Downstream
//!   statement spans shift by the byte delta in a single sweep.
//! * **profile** — the workload aggregates are monoids over statements
//!   ([`StatementContribution`]): the edit applies as
//!   `retract(old unique) ⊕ insert(new unique)`. A DDL edit refolds the
//!   schema and workload (still without touching the front-end) and
//!   lets the column-granular cache tiers decide what else went stale.
//! * **patch** — per-statement detection slices are retained with their
//!   offsets; only dirty statements' slices are recomputed (from the
//!   [`crate::IncrementalCache`] or fresh), everything else **moves** — no
//!   re-analysis, just a span shift for statements after the edit point.
//! * **finalize** — the inter-query/data tail replays from the unit
//!   memo (digest-keyed, so only genuinely-dirty units run), then the
//!   registry/rank/fix tail runs fresh — exactly the part a cold check
//!   pays too.
//!
//! The output is **byte-identical** to a cold [`SqlCheck::check_workload`]
//! on the edited script at every thread count, with or without a cache —
//! property-tested in `tests/session_identity.rs`. Anything the
//! incremental path cannot prove safe (multi-statement replacement
//! texts, parse diagnostics, `DELIMITER` directives, rule panics, a DDL
//! edit without a cache) falls back to a full rebuild, which is always
//! correct.
//!
//! The session is also **cost-aware**: when an edit set covers more than
//! ~10% of the workload, the per-edit patching overhead crosses the cold
//! path's streaming cost, so [`CheckSession::recheck`] deliberately
//! rebuilds cold instead — counted as [`CheckSession::cold_reverts`],
//! separately from the involuntary [`CheckSession::fallbacks`].

use crate::context::{
    synthesize_ddl, SchemaCatalog, SchemaVersions, StatementContribution, WorkloadProfile,
};
use crate::detect::batch::{data_unit_key, entry_deps, inter_unit_digests};
use crate::detect::cache::{UNIT_DATA, UNIT_INTER};
use crate::detect::schedule::run_units_weighted;
use crate::detect::{data, inter, intra, BatchOptions, BatchStats};
use crate::hashutil::Prehashed;
use crate::report::{Detection, Locus, Span};
use crate::{parse_diagnostics, CheckOutcome, SqlCheck, WorkloadOutcome};
use sqlcheck_parser::annotate::{annotate, Annotations};
use sqlcheck_parser::ast::{ParsedStatement, Statement};
use sqlcheck_parser::diag::{DiagKind, Diagnostic};
use sqlcheck_parser::parse;
use sqlcheck_parser::parser::parse_raw_limited_dialect;
use sqlcheck_parser::splitter::split_deduped_dialect;
use std::collections::HashMap;
use std::mem;
use std::sync::Arc;
use std::time::Instant;

/// One statement replacement: statement `index`'s text becomes `text`.
///
/// The replacement is expected to contain exactly one statement; an
/// empty or multi-statement replacement is still applied faithfully, but
/// through the full-rebuild fallback because it changes the statement
/// count.
#[derive(Debug, Clone)]
pub struct Edit {
    /// Index of the statement to replace (script order, 0-based).
    pub index: usize,
    /// The replacement SQL text.
    pub text: String,
}

impl Edit {
    /// Convenience constructor.
    pub fn new(index: usize, text: impl Into<String>) -> Self {
        Edit { index, text: text.into() }
    }
}

/// One retained unique statement text.
struct Slot {
    hash: u128,
    fingerprint: u64,
    parsed: Arc<ParsedStatement>,
    ann: Arc<Annotations>,
    diags: Arc<[Diagnostic]>,
    /// Live occurrence count (0 = retired, revivable).
    count: usize,
    /// Canonical **deduped** intra-query detections: statement locus
    /// zeroed, spans statement-relative. Fan-out to occurrence `i`
    /// rewrites the locus and rebases spans — exactly the batch engine's
    /// global dedup ⊕ span attachment, factored per statement (dedup
    /// keys are disjoint across statement loci).
    canon: Arc<Vec<Detection>>,
    /// Lazily computed workload contribution, valid for the current
    /// schema (cleared on DDL refolds — resolution consults the schema).
    contribution: Option<StatementContribution>,
}

/// Everything the session retains besides the toolchain itself.
struct State {
    outcome: WorkloadOutcome,
    slots: Vec<Slot>,
    slot_of: HashMap<u128, usize, Prehashed>,
    /// Slot per statement, script order.
    order: Vec<usize>,
    /// `n + 1` prefix offsets of per-statement slices in the intra
    /// portion of the retained report.
    bounds: Vec<usize>,
    /// Length of the deduped inter+data tail that follows the intra
    /// portion (registry extras follow the tail).
    tail_len: usize,
    inter_units: Vec<Arc<Vec<Detection>>>,
    inter_digests: [u64; 4],
    /// Per-table data units in profile order. Never dirty within a
    /// session: the attached database is not re-profiled, so every data
    /// digest is constant.
    data_units: Vec<Arc<Vec<Detection>>>,
    versions: SchemaVersions,
    live_uniques: usize,
    /// Live template fingerprints with refcounts, so `unique_templates`
    /// stays O(edit) to maintain.
    template_counts: HashMap<u64, usize>,
    /// Something the incremental path cannot patch safely (diagnostics,
    /// rule panics, derivation mismatch): every re-check falls back to a
    /// full rebuild until an edit clears the condition away.
    degraded: bool,
}

/// A retained workload check that re-checks **edits**, not scripts.
///
/// ```
/// use sqlcheck::{BatchOptions, Edit, SqlCheck};
///
/// let script = "CREATE TABLE t (a INT PRIMARY KEY);\nSELECT a FROM t WHERE a = 1;";
/// let mut session = SqlCheck::new()
///     .with_cache(1024)
///     .into_session(script, BatchOptions::default());
/// let before = session.outcome().outcome.report.detections.len();
/// let after = session
///     .recheck(&[Edit::new(1, "SELECT * FROM t WHERE a = 1")])
///     .outcome
///     .report
///     .detections
///     .len();
/// assert!(after > before, "the edit introduces a Column Wildcard");
/// ```
pub struct CheckSession {
    tool: SqlCheck,
    opts: BatchOptions,
    script: String,
    state: State,
    rechecks: u64,
    fallbacks: u64,
    cold_reverts: u64,
}

impl SqlCheck {
    /// Check `script` and retain the full outcome as a [`CheckSession`]
    /// for warm [`CheckSession::recheck`]s. An attached
    /// [`SqlCheck::with_cache`] makes re-checks cheapest (intra results
    /// and inter/data units replay from it, and DDL edits stay
    /// incremental), but the session is correct without one.
    pub fn into_session(self, script: impl Into<String>, opts: BatchOptions) -> CheckSession {
        let script = script.into();
        let state = State::init(&self, &script, &opts);
        CheckSession {
            tool: self,
            opts,
            script,
            state,
            rechecks: 0,
            fallbacks: 0,
            cold_reverts: 0,
        }
    }
}

/// Does folding this statement into [`SchemaCatalog`] do anything?
fn is_schema_stmt(s: &Statement) -> bool {
    matches!(
        s,
        Statement::CreateTable(_)
            | Statement::CreateIndex(_)
            | Statement::AlterTable(_)
            | Statement::Drop(_)
    )
}

/// Zero the statement locus so the detections replay at any occurrence.
fn canonicalize(mut dets: Vec<Detection>) -> Vec<Detection> {
    for d in &mut dets {
        if let Locus::Statement { index } = &mut d.locus {
            *index = 0;
        }
    }
    dets
}

/// Dedup a canonical entry, reusing the allocation when already clean.
fn dedup_arc(v: Arc<Vec<Detection>>) -> Arc<Vec<Detection>> {
    let mut d = (*v).clone();
    crate::detect::dedup(&mut d);
    if d.len() == v.len() {
        v
    } else {
        Arc::new(d)
    }
}

/// Emit `canon` fanned out to occurrence `i` of a statement spanning
/// `stmt_span`: locus rewritten, relative spans rebased — byte-identical
/// to the batch engine's fan-out + span attachment for this statement.
fn emit_fanout(out: &mut Vec<Detection>, canon: &[Detection], i: usize, stmt_span: Span) {
    for d in canon {
        let mut d = d.clone();
        if let Locus::Statement { index } = &mut d.locus {
            *index = i;
        }
        d.span = Some(match d.span {
            Some(rel) => Span::new(stmt_span.start + rel.start, stmt_span.start + rel.end),
            None => stmt_span,
        });
        out.push(d);
    }
}

impl State {
    /// Cold build: run the ordinary pipeline, then derive the retained
    /// forms (slots, per-statement slice bounds, tail units). With a
    /// cache attached the derivation is all lookups — `check_workload`
    /// just stored every unique text and unit; without one the intra
    /// results are recomputed once (the only duplicated work).
    fn init(tool: &SqlCheck, script: &str, opts: &BatchOptions) -> State {
        let base = tool.check_workload(script, opts);
        let ctx = &base.outcome.context;
        let cfg = &tool.detector.cfg;
        let use_context = !cfg.intra_only;
        let cache = tool.cache.as_deref();
        let n = ctx.statements.len();

        let mut slot_of: HashMap<u128, usize, Prehashed> =
            HashMap::with_capacity_and_hasher(n.min(1 << 16), Prehashed::default());
        let mut slots: Vec<Slot> = Vec::new();
        let mut first_occurrence: Vec<usize> = Vec::new();
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut template_counts: HashMap<u64, usize> = HashMap::new();
        for (idx, s) in ctx.statements.iter().enumerate() {
            let slot = match slot_of.get(&s.text_hash) {
                Some(&slot) => slot,
                None => {
                    let slot = slots.len();
                    slot_of.insert(s.text_hash, slot);
                    first_occurrence.push(idx);
                    slots.push(Slot {
                        hash: s.text_hash,
                        fingerprint: s.template_hash,
                        parsed: s.parsed.clone(),
                        ann: s.ann.clone(),
                        diags: s.diags.clone(),
                        count: 0,
                        canon: Arc::new(Vec::new()),
                        contribution: None,
                    });
                    slot
                }
            };
            slots[slot].count += 1;
            *template_counts.entry(s.template_hash).or_default() += 1;
            order.push(slot);
        }

        // Conditions the incremental path refuses to patch around:
        // diagnostic attribution and panic replay are cheap to get right
        // by rebuilding cold.
        let mut degraded = !ctx.diagnostics.is_empty()
            || base.stats.rule_failures > 0
            || slots.iter().any(|s| !s.diags.is_empty());

        // Canonical intra detections per slot — from the cache when
        // possible, recomputed (panic-isolated) otherwise.
        let mut miss_slots: Vec<usize> = Vec::new();
        for (si, slot) in slots.iter_mut().enumerate() {
            match cache.and_then(|c| c.get(slot.hash)) {
                Some(hit) => slot.canon = dedup_arc(hit),
                None => miss_slots.push(si),
            }
        }
        if !miss_slots.is_empty() {
            let threads = tool.detector.plan_threads(opts, miss_slots.len());
            let cost = |pos: usize| {
                let s = &ctx.statements[first_occurrence[miss_slots[pos]]];
                ((s.span.end - s.span.start).max(16) as u64)
                    .saturating_mul(slots[miss_slots[pos]].count as u64)
            };
            let run = run_units_weighted(miss_slots.len(), threads, cost, &|pos| {
                let rep = first_occurrence[miss_slots[pos]];
                intra::detect_statement(rep, &ctx.statements[rep], ctx, cfg, use_context)
            });
            for (&si, out) in miss_slots.iter().zip(run.results) {
                match out {
                    Ok(dets) => {
                        let canonical = canonicalize(dets);
                        if let Some(c) = cache {
                            let rep = &ctx.statements[first_occurrence[si]];
                            c.insert(
                                rep.text_hash,
                                Arc::new(canonical.clone()),
                                Arc::new(entry_deps(&rep.parsed.stmt, &rep.ann)),
                            );
                        }
                        slots[si].canon = dedup_arc(Arc::new(canonical));
                    }
                    Err(_) => degraded = true,
                }
            }
        }

        let mut bounds: Vec<usize> = Vec::with_capacity(n + 1);
        bounds.push(0);
        for &slot in &order {
            bounds.push(bounds.last().unwrap() + slots[slot].canon.len());
        }

        // Tail units: one per inter-query rule + one per profiled table.
        let versions = ctx.schema.versions();
        let mut inter_units: Vec<Arc<Vec<Detection>>> = Vec::new();
        let mut inter_digests = [0u64; 4];
        if use_context {
            inter_digests = inter_unit_digests(ctx, &versions);
            for (u, &digest) in inter_digests.iter().enumerate() {
                let hit = cache.and_then(|c| c.unit_get(UNIT_INTER, u as u64, digest));
                let dets = match hit {
                    Some(h) => h,
                    None => {
                        let run =
                            run_units_weighted(1, 1, |_| 1, &|_| inter::detect_unit(u, ctx, cfg));
                        match run.results.into_iter().next().unwrap() {
                            Ok(d) => {
                                let a = Arc::new(d);
                                if let Some(c) = cache {
                                    c.unit_put(UNIT_INTER, u as u64, digest, Arc::clone(&a));
                                }
                                a
                            }
                            Err(_) => {
                                degraded = true;
                                Arc::new(Vec::new())
                            }
                        }
                    }
                };
                inter_units.push(dets);
            }
        }
        let mut data_units: Vec<Arc<Vec<Detection>>> = Vec::new();
        if let Some(dp) = &ctx.data {
            for tp in dp.tables() {
                let (id, digest) = data_unit_key(tp);
                let hit = cache.and_then(|c| c.unit_get(UNIT_DATA, id, digest));
                let dets = match hit {
                    Some(h) => h,
                    None => {
                        let run = run_units_weighted(1, 1, |_| 1, &|_| {
                            data::detect_table(tp, ctx, cfg)
                        });
                        match run.results.into_iter().next().unwrap() {
                            Ok(d) => {
                                let a = Arc::new(d);
                                if let Some(c) = cache {
                                    c.unit_put(UNIT_DATA, id, digest, Arc::clone(&a));
                                }
                                a
                            }
                            Err(_) => {
                                degraded = true;
                                Arc::new(Vec::new())
                            }
                        }
                    }
                };
                data_units.push(dets);
            }
        }
        let mut tail: Vec<Detection> = Vec::new();
        for u in inter_units.iter().chain(&data_units) {
            tail.extend(u.iter().cloned());
        }
        crate::detect::dedup(&mut tail);
        let tail_len = tail.len();

        // The derivation must tile the retained report exactly: intra
        // slices, then the tail, then registry extras. A mismatch means
        // an assumption broke — degrade rather than patch blind.
        if bounds[n] + tail_len > base.outcome.report.detections.len() {
            degraded = true;
        }

        let live_uniques = slots.len();
        State {
            outcome: base,
            slots,
            slot_of,
            order,
            bounds,
            tail_len,
            inter_units,
            inter_digests,
            data_units,
            versions,
            live_uniques,
            template_counts,
            degraded,
        }
    }
}

/// One validated, resolved edit ready to apply.
struct Planned {
    index: usize,
    text_len: usize,
    /// Statement span within the replacement text (the standalone split
    /// is identical to the in-context split: statement boundaries are
    /// context-free after a terminating `;`).
    rel: Span,
    new_slot: usize,
    old_slot: usize,
}

impl CheckSession {
    /// The most recent outcome (cold build or last re-check).
    pub fn outcome(&self) -> &WorkloadOutcome {
        &self.state.outcome
    }

    /// The current script text (edits applied).
    pub fn script(&self) -> &str {
        &self.script
    }

    /// Total re-checks performed.
    pub fn rechecks(&self) -> u64 {
        self.rechecks
    }

    /// Re-checks that fell back to a full rebuild because the
    /// incremental path could not patch safely (degraded state,
    /// multi-statement replacement, diagnostics, rule panic). Deliberate
    /// cost-based cold re-checks are counted separately
    /// ([`CheckSession::cold_reverts`]).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Re-checks where the session **chose** the cold path up front: the
    /// edit set covered more than ~10% of the workload, past the
    /// crossover where per-edit patching overhead (splice, delta
    /// profile, slice surgery) exceeds a straight rebuild. Not a
    /// failure — the outcome is identical either way — so these are not
    /// [`CheckSession::fallbacks`].
    pub fn cold_reverts(&self) -> u64 {
        self.cold_reverts
    }

    /// Apply `edits` (distinct statement indices) and re-check. The
    /// outcome is byte-identical to a cold [`SqlCheck::check_workload`]
    /// of the edited script; cost is proportional to the edit set on the
    /// incremental path.
    ///
    /// # Panics
    ///
    /// On out-of-range or duplicate indices — those are caller bugs, not
    /// workload properties.
    pub fn recheck(&mut self, edits: &[Edit]) -> &WorkloadOutcome {
        self.rechecks += 1;
        if edits.is_empty() {
            return &self.state.outcome;
        }
        let t_total = Instant::now();
        let n = self.state.order.len();
        let mut sorted: Vec<&Edit> = edits.iter().collect();
        sorted.sort_by_key(|e| e.index);
        for w in sorted.windows(2) {
            assert!(w[0].index != w[1].index, "duplicate edit index {}", w[0].index);
        }
        let last = sorted.last().unwrap();
        assert!(last.index < n, "edit index {} out of range ({n} statements)", last.index);

        // Cost-based self-selection: past ~10% dirty statements the
        // incremental path's per-edit overhead crosses the cold path's
        // streaming cost (measured in BENCH_incremental.json) — rebuild
        // deliberately instead of patching, counted as a cold revert.
        let revert_cold = !self.state.degraded && edits.len() * 10 > n;
        let plan = if self.state.degraded || revert_cold { None } else { self.plan(&sorted) };
        self.splice(&sorted);
        match plan {
            Some(plan) => {
                if self.apply(plan, t_total).is_none() {
                    self.full_rebuild(t_total);
                }
            }
            None if revert_cold => {
                self.cold_reverts += 1;
                self.rebuild(t_total);
            }
            None => self.full_rebuild(t_total),
        }
        &self.state.outcome
    }

    /// Validate the edit set for the incremental path: each replacement
    /// splits to exactly one statement, parses without diagnostics, and
    /// resolves to a (possibly fresh) slot. `None` → fallback.
    fn plan(&mut self, sorted: &[&Edit]) -> Option<Vec<Planned>> {
        let mut plan: Vec<Planned> = Vec::with_capacity(sorted.len());
        let dialect = self.state.outcome.outcome.context.dialect;
        for e in sorted {
            let split = split_deduped_dialect(&e.text, 1, dialect);
            if split.uniques.len() != 1
                || split.occurrences.len() != 1
                || split.saw_delimiter_directive
            {
                return None;
            }
            let u = &split.uniques[0];
            let new_slot = match self.state.slot_of.get(&u.content_hash) {
                Some(&slot) => slot,
                None => {
                    let raw = u.materialize(&e.text);
                    let (parsed, diags) =
                        parse_raw_limited_dialect(raw, &self.opts.limits, dialect);
                    if !diags.is_empty() {
                        return None;
                    }
                    let ann = annotate(&parsed.stmt, &parsed.arena);
                    let slot = self.state.slots.len();
                    self.state.slot_of.insert(u.content_hash, slot);
                    self.state.slots.push(Slot {
                        hash: u.content_hash,
                        fingerprint: u.fingerprint,
                        parsed: Arc::new(parsed),
                        ann: Arc::new(ann),
                        diags: Vec::new().into(),
                        count: 0,
                        canon: Arc::new(Vec::new()),
                        contribution: None,
                    });
                    slot
                }
            };
            plan.push(Planned {
                index: e.index,
                text_len: e.text.len(),
                rel: u.span,
                new_slot,
                old_slot: self.state.order[e.index],
            });
        }
        Some(plan)
    }

    /// Splice every replacement into the script in one pass (spans are
    /// the **pre-edit** statement spans; edits are ascending).
    fn splice(&mut self, sorted: &[&Edit]) {
        let stmts = &self.state.outcome.outcome.context.statements;
        let extra: usize = sorted.iter().map(|e| e.text.len()).sum();
        let mut out = String::with_capacity(self.script.len() + extra);
        let mut pos = 0usize;
        for e in sorted {
            let span = stmts[e.index].span;
            out.push_str(&self.script[pos..span.start]);
            out.push_str(&e.text);
            pos = span.end;
        }
        out.push_str(&self.script[pos..]);
        self.script = out;
    }

    /// The incremental path. `None` → the caller falls back to a full
    /// rebuild (the script is already spliced, so the fallback is always
    /// correct regardless of how far this got).
    fn apply(&mut self, plan: Vec<Planned>, t_total: Instant) -> Option<()> {
        let state = &mut self.state;
        let tool = &self.tool;
        let cfg = &tool.detector.cfg;
        let use_context = !cfg.intra_only;
        let cache = tool.cache.as_deref();
        let n = state.order.len();
        let counters_before = cache.map(|c| c.counters());

        // ---- edit: statement records, spans, slot bookkeeping --------
        let t_edit = Instant::now();
        let mut dirty = vec![false; n];
        let mut shift: Vec<i64> = vec![0; n];
        let mut schema_dirty = false;
        {
            let ctx = &mut state.outcome.outcome.context;
            let mut cum: i64 = 0;
            let mut ei = 0usize;
            for i in 0..n {
                let s = &mut ctx.statements[i];
                if ei < plan.len() && plan[ei].index == i {
                    let p = &plan[ei];
                    let slot = &state.slots[p.new_slot];
                    schema_dirty |=
                        is_schema_stmt(&s.parsed.stmt) || is_schema_stmt(&slot.parsed.stmt);
                    let region_start = (s.span.start as i64 + cum) as usize;
                    let old_len = (s.span.end - s.span.start) as i64;
                    s.parsed = slot.parsed.clone();
                    s.ann = slot.ann.clone();
                    s.text_hash = slot.hash;
                    s.template_hash = slot.fingerprint;
                    s.diags = slot.diags.clone();
                    s.span = Span::new(region_start + p.rel.start, region_start + p.rel.end);
                    dirty[i] = true;
                    cum += p.text_len as i64 - old_len;
                    ei += 1;
                } else if cum != 0 {
                    s.span = Span::new(
                        (s.span.start as i64 + cum) as usize,
                        (s.span.end as i64 + cum) as usize,
                    );
                    shift[i] = cum;
                }
            }
        }
        for p in &plan {
            let old = &mut state.slots[p.old_slot];
            old.count -= 1;
            if old.count == 0 {
                state.live_uniques -= 1;
            }
            let of = old.fingerprint;
            if let Some(c) = state.template_counts.get_mut(&of) {
                *c -= 1;
                if *c == 0 {
                    state.template_counts.remove(&of);
                }
            }
            let new = &mut state.slots[p.new_slot];
            if new.count == 0 {
                state.live_uniques += 1;
            }
            new.count += 1;
            *state.template_counts.entry(new.fingerprint).or_default() += 1;
            state.order[p.index] = p.new_slot;
        }
        let warm_edit_micros = t_edit.elapsed().as_micros();

        // ---- profile: workload delta or DDL refold -------------------
        let t_profile = Instant::now();
        if schema_dirty && cache.is_none() {
            // Column-granular invalidation of retained detections is the
            // cache's feature; without one a DDL edit rebuilds cold.
            return None;
        }
        {
            let ctx = &mut state.outcome.outcome.context;
            if schema_dirty {
                // Refold the schema exactly as a cold build would:
                // statements in order, then the attached database's
                // tables merged in for anything the DDL no longer
                // declares.
                let mut schema =
                    SchemaCatalog::from_statements(ctx.statements.iter().map(|a| &a.parsed.stmt));
                if let Some(db) = &tool.database {
                    for table in db.tables() {
                        if schema.table(&table.schema.name).is_none() {
                            let ddl = synthesize_ddl(table);
                            for p in parse(&ddl) {
                                schema.apply(&p.stmt);
                            }
                        }
                    }
                }
                ctx.schema = schema;
                // Contributions resolve against the schema — recompute
                // lazily under the new one, and refold the profile from
                // live uniques (which also clears any zero-usage entries
                // retired texts left behind).
                for s in &mut state.slots {
                    s.contribution = None;
                }
                ctx.workload = WorkloadProfile::build_weighted(
                    state
                        .slots
                        .iter()
                        .filter(|s| s.count > 0)
                        .map(|s| (&s.parsed.stmt, s.ann.as_ref(), s.count)),
                    &ctx.schema,
                );
                state.versions = ctx.schema.versions();
            } else {
                // retract(old) ⊕ insert(new), one occurrence per edit.
                // Retiring a text may leave all-zero usage entries behind
                // (exact removal would need global refcounts over every
                // statement's touches); every workload consumer and unit
                // digest is insensitive to them — pinned by the delta
                // property suite.
                let schema = &ctx.schema;
                let workload = &mut ctx.workload;
                for p in &plan {
                    for (slot, insert) in [(p.old_slot, false), (p.new_slot, true)] {
                        let s = &mut state.slots[slot];
                        if s.contribution.is_none() {
                            s.contribution = Some(WorkloadProfile::contribution(
                                &s.parsed.stmt,
                                &s.ann,
                                schema,
                            ));
                        }
                        let c = s.contribution.as_ref().unwrap();
                        if insert {
                            workload.add_contribution(c, 1);
                        } else {
                            workload.sub_contribution(c, 1);
                        }
                    }
                }
            }
        }
        let ctx_ref = &state.outcome.outcome.context;
        if let Some(c) = cache {
            c.ensure_epoch(tool.detector.config_epoch(ctx_ref), &state.versions);
        }
        let warm_profile_micros = t_profile.elapsed().as_micros();

        // ---- patch (a): dirty canonical slices -----------------------
        let t_patch = Instant::now();
        let mut incremental_hits = 0usize;
        let mut incremental_misses = 0usize;
        let mut threads_used = 1usize;
        // Slots needing a canonical refresh: fresh/revived slots from the
        // edit set, plus — after a DDL edit — every live slot, so the
        // column-granular epoch sweep decides what actually re-runs.
        let mut seen = vec![false; state.slots.len()];
        let mut need: Vec<usize> = Vec::new();
        for p in &plan {
            if !seen[p.new_slot] {
                seen[p.new_slot] = true;
                need.push(p.new_slot);
            }
        }
        if schema_dirty {
            for (si, s) in state.slots.iter().enumerate() {
                if s.count > 0 && !seen[si] {
                    seen[si] = true;
                    need.push(si);
                }
            }
        }
        // Representative occurrence per needed slot.
        let mut rep_of: HashMap<usize, usize> = HashMap::with_capacity(need.len());
        for (i, &slot) in state.order.iter().enumerate() {
            if seen[slot] && !rep_of.contains_key(&slot) {
                rep_of.insert(slot, i);
            }
        }
        let mut changed_slots: Vec<usize> = Vec::new();
        let mut recompute: Vec<usize> = Vec::new();
        for &si in &need {
            match cache.and_then(|c| c.get(state.slots[si].hash)) {
                Some(hit) => {
                    let refreshed = dedup_arc(hit);
                    if *refreshed != *state.slots[si].canon {
                        changed_slots.push(si);
                    }
                    state.slots[si].canon = refreshed;
                    incremental_hits += 1;
                }
                None => recompute.push(si),
            }
        }
        if !recompute.is_empty() {
            threads_used = tool.detector.plan_threads(&self.opts, recompute.len());
            let cost = |pos: usize| {
                let s = &ctx_ref.statements[rep_of[&recompute[pos]]];
                ((s.span.end - s.span.start).max(16) as u64)
                    .saturating_mul(state.slots[recompute[pos]].count.max(1) as u64)
            };
            let run = run_units_weighted(recompute.len(), threads_used, cost, &|pos| {
                let rep = rep_of[&recompute[pos]];
                intra::detect_statement(rep, &ctx_ref.statements[rep], ctx_ref, cfg, use_context)
            });
            let mut fresh: Vec<(usize, Arc<Vec<Detection>>)> = Vec::with_capacity(recompute.len());
            for (&si, out) in recompute.iter().zip(run.results) {
                match out {
                    Ok(dets) => {
                        let canonical = canonicalize(dets);
                        if let Some(c) = cache {
                            let rep = &ctx_ref.statements[rep_of[&si]];
                            c.insert(
                                rep.text_hash,
                                Arc::new(canonical.clone()),
                                Arc::new(entry_deps(&rep.parsed.stmt, &rep.ann)),
                            );
                        }
                        fresh.push((si, dedup_arc(Arc::new(canonical))));
                        incremental_misses += 1;
                    }
                    // A panicking unit needs the cold path's diagnostic
                    // replay — rebuild.
                    Err(_) => return None,
                }
            }
            for (si, canon) in fresh {
                if *canon != *state.slots[si].canon {
                    changed_slots.push(si);
                }
                state.slots[si].canon = canon;
            }
        }
        // Every occurrence of a content-changed slot re-emits. Edited
        // indices are already dirty; this catches the other occurrences
        // (shared texts, DDL-invalidated slots).
        if !changed_slots.is_empty() {
            let mut changed = vec![false; state.slots.len()];
            for &si in &changed_slots {
                changed[si] = true;
            }
            for (i, &slot) in state.order.iter().enumerate() {
                if changed[slot] {
                    dirty[i] = true;
                }
            }
        }
        let mut warm_patch_micros = t_patch.elapsed().as_micros();

        // ---- finalize (a): tail units off the memo -------------------
        let t_finalize = Instant::now();
        let mut inter_units_reused = 0usize;
        let mut inter_units_recomputed = 0usize;
        let mut tail_dirty = false;
        if use_context {
            let nd = inter_unit_digests(ctx_ref, &state.versions);
            for (u, &digest) in nd.iter().enumerate() {
                if digest == state.inter_digests[u] {
                    inter_units_reused += 1;
                    continue;
                }
                tail_dirty = true;
                let hit = cache.and_then(|c| c.unit_get(UNIT_INTER, u as u64, digest));
                let dets = match hit {
                    Some(h) => {
                        inter_units_reused += 1;
                        h
                    }
                    None => {
                        let run = run_units_weighted(1, 1, |_| 1, &|_| {
                            inter::detect_unit(u, ctx_ref, cfg)
                        });
                        match run.results.into_iter().next().unwrap() {
                            Ok(d) => {
                                inter_units_recomputed += 1;
                                let a = Arc::new(d);
                                if let Some(c) = cache {
                                    c.unit_put(UNIT_INTER, u as u64, digest, Arc::clone(&a));
                                }
                                a
                            }
                            Err(_) => return None,
                        }
                    }
                };
                state.inter_units[u] = dets;
                state.inter_digests[u] = digest;
            }
        }
        let data_units_reused = state.data_units.len();
        let warm_finalize_a = t_finalize.elapsed().as_micros();

        // ---- patch (b): one-pass report rebuild ----------------------
        // Clean statements MOVE (plus a span shift after the edit
        // point); dirty ones re-fan-out from their slot's canonical
        // slice. The tail moves unless a unit changed; registry extras
        // are recomputed below either way.
        let t_patch2 = Instant::now();
        let warm_dirty_statements = dirty.iter().filter(|&&d| d).count();
        {
            let CheckOutcome { context, report, .. } = &mut state.outcome.outcome;
            let old = mem::take(&mut report.detections);
            let mut out: Vec<Detection> = Vec::with_capacity(old.len() + 16);
            let mut it = old.into_iter();
            let mut new_bounds: Vec<usize> = Vec::with_capacity(n + 1);
            new_bounds.push(0);
            for i in 0..n {
                let old_cnt = state.bounds[i + 1] - state.bounds[i];
                if dirty[i] {
                    for _ in 0..old_cnt {
                        it.next()?;
                    }
                    emit_fanout(
                        &mut out,
                        &state.slots[state.order[i]].canon,
                        i,
                        context.statements[i].span,
                    );
                } else if shift[i] == 0 {
                    for _ in 0..old_cnt {
                        out.push(it.next()?);
                    }
                } else {
                    let d = shift[i];
                    for _ in 0..old_cnt {
                        let mut det = it.next()?;
                        if let Some(sp) = det.span {
                            det.span = Some(Span::new(
                                (sp.start as i64 + d) as usize,
                                (sp.end as i64 + d) as usize,
                            ));
                        }
                        out.push(det);
                    }
                }
                new_bounds.push(out.len());
            }
            if tail_dirty {
                for _ in 0..state.tail_len {
                    it.next()?;
                }
                let mut tail: Vec<Detection> = Vec::new();
                for u in state.inter_units.iter().chain(&state.data_units) {
                    tail.extend(u.iter().cloned());
                }
                crate::detect::dedup(&mut tail);
                state.tail_len = tail.len();
                out.extend(tail);
            } else {
                for _ in 0..state.tail_len {
                    out.push(it.next()?);
                }
            }
            // Whatever remains is the previous registry extras —
            // dropped; the registry re-runs below.
            report.detections = out;
            state.bounds = new_bounds;
        }
        warm_patch_micros += t_patch2.elapsed().as_micros();

        // ---- finalize (b): registry + derived invalidation -----------
        let t_finalize2 = Instant::now();
        // A non-degraded session has no script, parse, or unit
        // diagnostics by construction (init checked, plan re-checks
        // every replacement), so the base diagnostic set is empty
        // without an O(statements) sweep; debug builds verify.
        debug_assert!(parse_diagnostics(&state.outcome.outcome.context).is_empty());
        let mut diagnostics: Vec<Diagnostic> = Vec::new();
        let mut extra = tool.run_registry(&state.outcome.outcome.context, &mut diagnostics);
        let registry_failures = diagnostics.len();
        crate::detect::attach_default_spans(&mut extra, &state.outcome.outcome.context);
        state.outcome.outcome.report.detections.extend(extra);
        // Ranking and fixes are lazy on [`CheckOutcome`]; dropping the
        // memo here keeps the re-check proportional to the edit set (fix
        // synthesis is O(detections) with context-wide reads — e.g.
        // impacted-query lists — so it cannot be patched in place).
        state.outcome.outcome.invalidate_derived();
        state.outcome.outcome.diagnostics = diagnostics;
        let warm_finalize_micros = warm_finalize_a + t_finalize2.elapsed().as_micros();

        // ---- stats ---------------------------------------------------
        let mut stats = BatchStats {
            statements: n,
            unique_templates: state.template_counts.len(),
            unique_texts: state.live_uniques,
            cache_hits: n - state.live_uniques,
            threads: threads_used,
            requested_threads: self.opts.threads.unwrap_or(0),
            warm_edit_micros,
            warm_profile_micros,
            warm_patch_micros,
            warm_finalize_micros,
            warm_dirty_statements,
            incremental_hits,
            incremental_misses,
            inter_units_reused,
            inter_units_recomputed,
            data_units_reused,
            rule_failures: registry_failures,
            total_micros: t_total.elapsed().as_micros(),
            ..BatchStats::default()
        };
        stats.diag_counts[DiagKind::RuleFailed.index()] = registry_failures;
        if let (Some(before), Some(c)) = (counters_before, cache) {
            let after = c.counters();
            stats.incremental_evictions = (after.evictions - before.evictions) as usize;
            stats.table_evictions = (after.table_evictions - before.table_evictions) as usize;
            stats.column_evictions = (after.column_evictions - before.column_evictions) as usize;
        }
        state.outcome.stats = stats;
        Some(())
    }

    /// Rebuild everything from the (already spliced) script — the
    /// unconditional-correctness path.
    fn full_rebuild(&mut self, t_total: Instant) {
        self.fallbacks += 1;
        self.rebuild(t_total);
    }

    /// The rebuild itself, shared by involuntary fallbacks and
    /// deliberate cost-based cold reverts.
    fn rebuild(&mut self, t_total: Instant) {
        self.state = State::init(&self.tool, &self.script, &self.opts);
        self.state.outcome.stats.total_micros = t_total.elapsed().as_micros();
    }
}
