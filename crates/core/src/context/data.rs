//! Data context: column profiles extracted from a live database.
//!
//! The paper's data analyzer (§4.2) scans the database for schemata and
//! per-column distributions, then samples each table. Here the "database
//! server" is a [`sqlcheck_minidb::database::Database`]; the profiles are
//! computed once and cached in the context, "reused across several checks"
//! as the paper prescribes.

use sqlcheck_minidb::database::Database;
use sqlcheck_minidb::schema::Check;
use sqlcheck_minidb::stats::{profile_table, ColumnStats};
use sqlcheck_minidb::value::DataType;
use std::collections::BTreeMap;

/// Configuration of the data analyzer.
#[derive(Debug, Clone)]
pub struct DataAnalysisConfig {
    /// Reservoir sample size per column.
    pub sample_size: usize,
    /// PRNG seed (profiles are deterministic given the seed).
    pub seed: u64,
    /// Minimum rows before distribution-based rules fire (tiny tables are
    /// all "low cardinality" — a false-positive source).
    pub min_rows: usize,
    /// Distinct-ratio threshold under which a textual column is considered
    /// enum-like (Example 4's threshold).
    pub enum_distinct_ratio: f64,
    /// Maximum distinct values for an enum-like column.
    pub enum_max_distinct: usize,
    /// Fraction of sampled values that must contain a delimiter for the
    /// multi-valued-attribute data rule to fire.
    pub mva_fraction: f64,
    /// Fraction of sampled text values that must parse as numbers for the
    /// incorrect-data-type rule to fire.
    pub wrong_type_fraction: f64,
    /// Distinct-ratio threshold under which an indexed column is too
    /// low-cardinality for the index to help (Fig 8c's false-positive
    /// eliminator).
    pub low_cardinality_ratio: f64,
}

impl Default for DataAnalysisConfig {
    fn default() -> Self {
        DataAnalysisConfig {
            sample_size: 64,
            seed: 0xC0FFEE,
            min_rows: 20,
            enum_distinct_ratio: 0.05,
            enum_max_distinct: 16,
            mva_fraction: 0.5,
            wrong_type_fraction: 0.9,
            low_cardinality_ratio: 0.01,
        }
    }
}

/// Profile of one column, combining declared type and observed stats.
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Declared engine type.
    pub dtype: DataType,
    /// Whether a timestamp column declared a timezone.
    pub with_timezone: bool,
    /// Observed statistics (with sample).
    pub stats: ColumnStats,
}

/// Profile of one table.
#[derive(Debug, Clone)]
pub struct TableProfile {
    /// Table name (as declared).
    pub name: String,
    /// Live row count at profiling time.
    pub row_count: usize,
    /// Column profiles in schema order.
    pub columns: Vec<ColumnProfile>,
    /// Primary key column names.
    pub primary_key: Vec<String>,
    /// Names of columns covered by CHECK constraints.
    pub checked_columns: Vec<String>,
    /// Names of columns participating in FOREIGN KEY constraints — a
    /// declared FK already normalises/constrains the column, so several
    /// data rules exempt these.
    pub foreign_key_columns: Vec<String>,
    /// Index descriptions `(name, leading column, distinct keys)`.
    pub indexes: Vec<(String, String, usize)>,
}

impl TableProfile {
    /// Find a column profile by name.
    pub fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// The data context over a whole database.
#[derive(Debug, Clone, Default)]
pub struct DataProfile {
    tables: BTreeMap<String, TableProfile>,
}

impl DataProfile {
    /// Profile every table in `db`.
    pub fn build(db: &Database, cfg: &DataAnalysisConfig) -> Self {
        let mut out = DataProfile::default();
        for table in db.tables() {
            let stats = profile_table(table, cfg.sample_size, cfg.seed);
            let columns = table
                .schema
                .columns
                .iter()
                .zip(stats)
                .map(|(col, stats)| ColumnProfile {
                    name: col.name.clone(),
                    dtype: col.dtype,
                    with_timezone: col.with_timezone,
                    stats,
                })
                .collect();
            let checked_columns = table
                .schema
                .checks
                .iter()
                .map(|c| match c {
                    Check::InList { column, .. } | Check::Range { column, .. } => column.clone(),
                })
                .collect();
            let foreign_key_columns = table
                .schema
                .foreign_keys
                .iter()
                .flat_map(|fk| fk.columns.iter().cloned())
                .collect();
            let indexes = table
                .indexes()
                .iter()
                .map(|i| {
                    let leading = i
                        .columns
                        .first()
                        .map(|&c| table.schema.columns[c].name.clone())
                        .unwrap_or_default();
                    (i.name.clone(), leading, i.distinct_keys())
                })
                .collect();
            out.tables.insert(
                table.schema.name.to_ascii_lowercase(),
                TableProfile {
                    name: table.schema.name.clone(),
                    row_count: table.len(),
                    columns,
                    primary_key: table.schema.primary_key.clone(),
                    checked_columns,
                    foreign_key_columns,
                    indexes,
                },
            );
        }
        out
    }

    /// Look up a table profile (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&TableProfile> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// All table profiles.
    pub fn tables(&self) -> impl Iterator<Item = &TableProfile> {
        self.tables.values()
    }

    /// Number of profiled tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlcheck_minidb::prelude::*;

    fn demo_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("Tenants")
                .column(Column::new("Tenant_ID", DataType::Text).not_null())
                .column(Column::new("User_IDs", DataType::Text))
                .primary_key(&["Tenant_ID"]),
        )
        .unwrap();
        for i in 0..50 {
            db.insert(
                "Tenants",
                vec![
                    Value::text(format!("T{i}")),
                    Value::text(format!("U{},U{}", i * 2, i * 2 + 1)),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn profiles_every_table_and_column() {
        let db = demo_db();
        let p = DataProfile::build(&db, &DataAnalysisConfig::default());
        assert_eq!(p.table_count(), 1);
        let t = p.table("tenants").unwrap();
        assert_eq!(t.row_count, 50);
        assert_eq!(t.columns.len(), 2);
        assert_eq!(t.primary_key, vec!["Tenant_ID"]);
        let uid = t.column("user_ids").unwrap();
        assert!(!uid.stats.sample.is_empty());
        assert_eq!(uid.dtype, DataType::Text);
    }

    #[test]
    fn index_metadata_captured() {
        let db = demo_db();
        let p = DataProfile::build(&db, &DataAnalysisConfig::default());
        let t = p.table("tenants").unwrap();
        assert_eq!(t.indexes.len(), 1, "pkey index");
        assert_eq!(t.indexes[0].1, "Tenant_ID");
        assert_eq!(t.indexes[0].2, 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let db = demo_db();
        let cfg = DataAnalysisConfig { sample_size: 8, ..Default::default() };
        let p1 = DataProfile::build(&db, &cfg);
        let p2 = DataProfile::build(&db, &cfg);
        let s1 = &p1.table("tenants").unwrap().column("user_ids").unwrap().stats.sample;
        let s2 = &p2.table("tenants").unwrap().column("user_ids").unwrap().stats.sample;
        assert_eq!(s1, s2);
    }
}
