//! Workload profile: how the application's queries use tables and columns.
//!
//! The inter-query detection rules (§4.1 ❷) and the index advisor rules
//! (Example 5) need aggregate knowledge of the whole statement set: which
//! columns appear in equality predicates, which tables are joined on which
//! columns, how often each table is read or written.

use super::schema::SchemaCatalog;
use sqlcheck_parser::annotate::Annotations;
use sqlcheck_parser::ast::{Statement, TableRef};
use std::collections::BTreeMap;

/// Usage counters for one `(table, column)` pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnUsage {
    /// Equality predicates (`=`, `IN`).
    pub eq_predicates: usize,
    /// Range predicates (`<`, `>`, `BETWEEN`, ...).
    pub range_predicates: usize,
    /// Pattern predicates (`LIKE`, `REGEXP`, ...).
    pub pattern_predicates: usize,
    /// GROUP BY occurrences.
    pub group_by: usize,
    /// ORDER BY occurrences.
    pub order_by: usize,
    /// Join-condition occurrences.
    pub join: usize,
    /// Writes (UPDATE SET / INSERT).
    pub writes: usize,
}

impl ColumnUsage {
    /// Total read-side references.
    pub fn reads(&self) -> usize {
        self.eq_predicates
            + self.range_predicates
            + self.pattern_predicates
            + self.group_by
            + self.order_by
            + self.join
    }
}

/// One join-graph edge observed in a query.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct JoinEdge {
    /// `(table, column)` — lexicographically smaller side first.
    pub left: (String, String),
    /// The other side.
    pub right: (String, String),
}

/// Aggregated workload profile.
///
/// Every aggregate in here is a **mergeable monoid over statements**:
/// counters are additive, and map entries exist exactly while their
/// supporting statements do. That is what makes the profile
/// delta-maintainable — see [`StatementContribution`]: a warm re-check
/// applies an edit as `retract(old unique) ⊕ insert(new unique)` instead
/// of re-folding the whole workload, and the result is byte-identical to
/// a from-scratch [`WorkloadProfile::build_weighted`] (property-tested).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadProfile {
    /// Per-(table-lowercase, column-lowercase) usage counters.
    usage: BTreeMap<(String, String), ColumnUsage>,
    /// Join edges with observation counts.
    pub join_edges: BTreeMap<JoinEdge, usize>,
    /// Statements per table (reads + writes).
    pub table_refs: BTreeMap<String, usize>,
    /// Total statements profiled.
    pub statement_count: usize,
}

impl WorkloadProfile {
    /// Build a profile from annotated statements, resolving alias
    /// qualifiers against each statement's own scope and falling back to
    /// the schema catalog for unqualified columns. Takes borrowed pairs so
    /// callers (notably `ContextBuilder::build`) never deep-clone the
    /// statement list just to profile it.
    pub fn build<'a>(
        stmts: impl IntoIterator<Item = (&'a Statement, &'a Annotations)>,
        schema: &SchemaCatalog,
    ) -> Self {
        Self::build_weighted(stmts.into_iter().map(|(s, a)| (s, a, 1)), schema)
    }

    /// Build a profile from *unique* annotated statements, each weighted
    /// by its occurrence count. Every profile counter is additive over
    /// statements, so folding one representative `n` times heavier is
    /// identical to folding `n` duplicates individually — this is what
    /// lets the parse-once front-end profile a workload in O(unique
    /// texts) instead of O(statements).
    pub fn build_weighted<'a>(
        stmts: impl IntoIterator<Item = (&'a Statement, &'a Annotations, usize)>,
        schema: &SchemaCatalog,
    ) -> Self {
        let mut w = WorkloadProfile::default();
        for (stmt, ann, n) in stmts {
            w.fold_one(stmt, ann, n, schema);
        }
        w
    }

    /// Fold one statement into the profile with occurrence weight `n` —
    /// the single source of truth for what a statement contributes, used
    /// by both the from-scratch build and [`WorkloadProfile::contribution`].
    fn fold_one(&mut self, stmt: &Statement, ann: &Annotations, n: usize, schema: &SchemaCatalog) {
        self.statement_count += n;
        let scope = Scope::of(stmt);
        for t in &ann.tables {
            *self.table_refs.entry(t.to_ascii_lowercase()).or_default() += n;
        }
        for p in &ann.predicates {
            let Some(table) = scope.resolve(p.qualifier.as_deref(), &p.column, schema) else {
                continue;
            };
            let u = self.usage_mut(&table, &p.column);
            match p.op.as_str() {
                "=" | "==" | "IN" | "<=>" => u.eq_predicates += n,
                "LIKE" | "ILIKE" | "REGEXP" | "GLOB" | "SIMILAR TO" => {
                    u.pattern_predicates += n
                }
                "IS NULL" => {}
                _ => u.range_predicates += n,
            }
        }
        for c in &ann.columns {
            use sqlcheck_parser::annotate::ColumnRole::*;
            let Some(table) = scope.resolve(c.qualifier.as_deref(), &c.column, schema) else {
                continue;
            };
            let u = self.usage_mut(&table, &c.column);
            match c.role {
                Grouped => u.group_by += n,
                Ordered => u.order_by += n,
                Joined => u.join += n,
                Written => u.writes += n,
                _ => {}
            }
        }
        for jc in &ann.join_conditions {
            let (Some(lt), Some((rq, rc))) = (
                scope.resolve(jc.left.0.as_deref(), &jc.left.1, schema),
                jc.right.clone(),
            ) else {
                continue;
            };
            let Some(rt) = scope.resolve(rq.as_deref(), &rc, schema) else { continue };
            let a = (lt.to_ascii_lowercase(), jc.left.1.to_ascii_lowercase());
            let b = (rt.to_ascii_lowercase(), rc.to_ascii_lowercase());
            let edge = if a <= b {
                JoinEdge { left: a, right: b }
            } else {
                JoinEdge { left: b, right: a }
            };
            *self.join_edges.entry(edge).or_default() += n;
        }
    }

    /// What one statement contributes to the profile per occurrence —
    /// precomputed so a retained profile can apply `count` changes as
    /// O(contribution) deltas. Resolution consults `schema` (unqualified
    /// columns, alias fallbacks), so cached contributions are only valid
    /// while the schema is unchanged.
    pub fn contribution(
        stmt: &Statement,
        ann: &Annotations,
        schema: &SchemaCatalog,
    ) -> StatementContribution {
        let mut tmp = WorkloadProfile::default();
        tmp.fold_one(stmt, ann, 1, schema);
        StatementContribution {
            usage: tmp.usage.into_iter().collect(),
            join_edges: tmp.join_edges.into_iter().collect(),
            table_refs: tmp.table_refs.into_iter().collect(),
        }
    }

    /// Merge `n` occurrences of a contribution into the profile
    /// (`insert` in retract ⊕ insert). Creates usage entries exactly
    /// like the from-scratch fold — including all-zero entries for pure
    /// touches (e.g. `IS NULL` predicates).
    pub fn add_contribution(&mut self, c: &StatementContribution, n: usize) {
        self.statement_count += n;
        for (key, u) in &c.usage {
            let e = self.usage.entry(key.clone()).or_default();
            e.eq_predicates += u.eq_predicates * n;
            e.range_predicates += u.range_predicates * n;
            e.pattern_predicates += u.pattern_predicates * n;
            e.group_by += u.group_by * n;
            e.order_by += u.order_by * n;
            e.join += u.join * n;
            e.writes += u.writes * n;
        }
        for (edge, k) in &c.join_edges {
            *self.join_edges.entry(edge.clone()).or_default() += k * n;
        }
        for (t, k) in &c.table_refs {
            *self.table_refs.entry(t.clone()).or_default() += k * n;
        }
    }

    /// Retract `n` occurrences of a contribution (`retract` in retract ⊕
    /// insert). Join-edge and table-ref entries vanish when their counts
    /// reach zero — exactly the entries a from-scratch build would not
    /// create. Usage entries are **not** removed here even when all
    /// counters reach zero: an entry's existence is supported by *any*
    /// statement touching the pair (including zero-count touches), so
    /// the caller tracks per-key touch refcounts across its statements
    /// and calls [`WorkloadProfile::remove_usage`] when a key's last
    /// supporter goes away.
    ///
    /// Panics (in debug) on counter underflow — retracting something
    /// never added is a caller bug.
    pub fn sub_contribution(&mut self, c: &StatementContribution, n: usize) {
        self.statement_count -= n;
        for (key, u) in &c.usage {
            let e = self.usage.get_mut(key).expect("retracting an untracked usage key");
            e.eq_predicates -= u.eq_predicates * n;
            e.range_predicates -= u.range_predicates * n;
            e.pattern_predicates -= u.pattern_predicates * n;
            e.group_by -= u.group_by * n;
            e.order_by -= u.order_by * n;
            e.join -= u.join * n;
            e.writes -= u.writes * n;
        }
        for (edge, k) in &c.join_edges {
            if let Some(e) = self.join_edges.get_mut(edge) {
                *e -= k * n;
                if *e == 0 {
                    self.join_edges.remove(edge);
                }
            }
        }
        for (t, k) in &c.table_refs {
            if let Some(e) = self.table_refs.get_mut(t) {
                *e -= k * n;
                if *e == 0 {
                    self.table_refs.remove(t);
                }
            }
        }
    }

    /// Drop a usage entry whose last supporting statement was retracted
    /// (see [`WorkloadProfile::sub_contribution`]).
    pub fn remove_usage(&mut self, key: &(String, String)) {
        self.usage.remove(key);
    }

    fn usage_mut(&mut self, table: &str, column: &str) -> &mut ColumnUsage {
        self.usage
            .entry((table.to_ascii_lowercase(), column.to_ascii_lowercase()))
            .or_default()
    }

    /// Usage counters for `(table, column)`, if any reference was seen.
    pub fn usage(&self, table: &str, column: &str) -> Option<&ColumnUsage> {
        self.usage.get(&(table.to_ascii_lowercase(), column.to_ascii_lowercase()))
    }

    /// Iterate all `(table, column, usage)` entries.
    pub fn iter_usage(&self) -> impl Iterator<Item = (&str, &str, &ColumnUsage)> {
        self.usage.iter().map(|((t, c), u)| (t.as_str(), c.as_str(), u))
    }

    /// Number of statements referencing a table.
    pub fn table_ref_count(&self, table: &str) -> usize {
        self.table_refs.get(&table.to_ascii_lowercase()).copied().unwrap_or(0)
    }
}

/// The per-occurrence delta one statement contributes to a
/// [`WorkloadProfile`] — sorted key/value pairs so two contributions of
/// the same statement text compare equal regardless of build order.
///
/// Retained by warm re-check sessions: an edit retracts the old unique's
/// contribution and inserts the new one instead of refolding the whole
/// workload. `statement_count` is implicit (always 1 per occurrence).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatementContribution {
    /// `(table, column)` usage counters, including all-zero pure touches.
    pub usage: Vec<((String, String), ColumnUsage)>,
    /// Canonicalised join edges with per-occurrence multiplicity.
    pub join_edges: Vec<(JoinEdge, usize)>,
    /// Referenced tables with per-occurrence multiplicity.
    pub table_refs: Vec<(String, usize)>,
}

impl StatementContribution {
    /// True when the statement contributes nothing beyond its count.
    pub fn is_empty(&self) -> bool {
        self.usage.is_empty() && self.join_edges.is_empty() && self.table_refs.is_empty()
    }
}

/// Alias scope of one statement.
struct Scope {
    /// `(binding-lowercase, table name)` pairs.
    bindings: Vec<(String, String)>,
}

impl Scope {
    fn of(stmt: &Statement) -> Scope {
        let mut bindings = Vec::new();
        let mut add_ref = |t: &TableRef| {
            if t.subquery.is_none() {
                bindings.push((t.binding().to_ascii_lowercase(), t.name.name().to_string()));
                // The bare table name also resolves even when aliased.
                bindings
                    .push((t.name.name().to_ascii_lowercase(), t.name.name().to_string()));
            }
        };
        match stmt {
            Statement::Select(s) => {
                for t in s.tables() {
                    add_ref(t);
                }
            }
            Statement::Insert(i) => {
                bindings.push((
                    i.table.name().to_ascii_lowercase(),
                    i.table.name().to_string(),
                ));
            }
            Statement::Update(u) => {
                bindings.push((
                    u.table.name().to_ascii_lowercase(),
                    u.table.name().to_string(),
                ));
            }
            Statement::Delete(d) => {
                bindings.push((
                    d.table.name().to_ascii_lowercase(),
                    d.table.name().to_string(),
                ));
            }
            _ => {}
        }
        Scope { bindings }
    }

    /// Resolve a column reference to its table name.
    fn resolve(
        &self,
        qualifier: Option<&str>,
        column: &str,
        schema: &SchemaCatalog,
    ) -> Option<String> {
        if let Some(q) = qualifier {
            let ql = q.to_ascii_lowercase();
            return self
                .bindings
                .iter()
                .find(|(b, _)| *b == ql)
                .map(|(_, t)| t.clone())
                .or(Some(q.to_string()));
        }
        // Unqualified: unique scope table wins; otherwise consult the schema.
        let mut distinct_tables: Vec<&String> = Vec::new();
        for (_, t) in &self.bindings {
            if !distinct_tables.iter().any(|x| x.eq_ignore_ascii_case(t)) {
                distinct_tables.push(t);
            }
        }
        match distinct_tables.len() {
            0 => None,
            1 => Some(distinct_tables[0].clone()),
            _ => distinct_tables
                .iter()
                .find(|t| {
                    schema.table(t).map(|ti| ti.column(column).is_some()).unwrap_or(false)
                })
                .map(|t| t.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlcheck_parser::{annotate, parse};

    fn profile(sql: &str) -> (WorkloadProfile, SchemaCatalog) {
        let parsed = parse(sql);
        let schema = SchemaCatalog::from_statements(parsed.iter().map(|p| &p.stmt));
        let stmts: Vec<_> =
            parsed.into_iter().map(|p| (p.stmt.clone(), annotate(&p.stmt, &p.arena))).collect();
        (WorkloadProfile::build(stmts.iter().map(|(s, a)| (s, a)), &schema), schema)
    }

    #[test]
    fn eq_predicates_counted_per_table_column() {
        let (w, _) = profile(
            "CREATE TABLE t (a INT, b INT);\
             SELECT * FROM t WHERE a = 1;\
             SELECT * FROM t WHERE a = 2 AND b > 3;",
        );
        assert_eq!(w.usage("t", "a").unwrap().eq_predicates, 2);
        assert_eq!(w.usage("t", "b").unwrap().range_predicates, 1);
    }

    #[test]
    fn alias_resolution() {
        let (w, _) = profile(
            "CREATE TABLE tenant (id INT, zone INT);\
             SELECT * FROM tenant AS t WHERE t.zone = 1;",
        );
        assert_eq!(w.usage("tenant", "zone").unwrap().eq_predicates, 1);
    }

    #[test]
    fn unqualified_column_resolved_via_schema() {
        let (w, _) = profile(
            "CREATE TABLE a (x INT);\
             CREATE TABLE b (y INT);\
             SELECT * FROM a JOIN b ON a.x = b.y WHERE y = 5;",
        );
        assert_eq!(w.usage("b", "y").unwrap().eq_predicates, 1);
        assert!(w.usage("a", "y").is_none());
    }

    #[test]
    fn join_edges_normalised() {
        let (w, _) = profile(
            "SELECT * FROM q JOIN t ON t.tid = q.tid;\
             SELECT * FROM t JOIN q ON q.tid = t.tid;",
        );
        assert_eq!(w.join_edges.len(), 1, "both orders collapse to one edge");
        assert_eq!(*w.join_edges.values().next().unwrap(), 2);
    }

    #[test]
    fn writes_counted() {
        let (w, _) = profile(
            "CREATE TABLE t (a INT, b INT);\
             UPDATE t SET a = 5 WHERE b = 1;\
             INSERT INTO t (a, b) VALUES (1, 2);",
        );
        assert_eq!(w.usage("t", "a").unwrap().writes, 2);
        assert_eq!(w.usage("t", "b").unwrap().eq_predicates, 1);
    }

    #[test]
    fn group_and_order_counted() {
        let (w, _) = profile(
            "CREATE TABLE t (g INT, v INT);\
             SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g;",
        );
        let u = w.usage("t", "g").unwrap();
        assert_eq!(u.group_by, 1);
        assert_eq!(u.order_by, 1);
    }

    #[test]
    fn table_ref_counts() {
        let (w, _) = profile("SELECT * FROM t; SELECT * FROM t; SELECT * FROM u;");
        assert_eq!(w.table_ref_count("t"), 2);
        assert_eq!(w.table_ref_count("u"), 1);
        assert_eq!(w.statement_count, 3);
    }

    /// A workload script with predicates, joins, writes, grouping, and a
    /// zero-usage touch (`IS NULL`) — every contribution shape at once.
    const DELTA_SQL: &str = "CREATE TABLE t (a INT, b INT);\
         CREATE TABLE u (tid INT, v INT);\
         SELECT * FROM t WHERE a = 1 AND b > 2;\
         SELECT * FROM t JOIN u ON t.a = u.tid WHERE v LIKE 'x%';\
         UPDATE t SET b = 9 WHERE a = 3;\
         SELECT a, COUNT(*) FROM t WHERE b IS NULL GROUP BY a ORDER BY a;";

    fn parsed_with_anns(
        sql: &str,
    ) -> (Vec<(Statement, sqlcheck_parser::annotate::Annotations)>, SchemaCatalog) {
        let parsed = parse(sql);
        let schema = SchemaCatalog::from_statements(parsed.iter().map(|p| &p.stmt));
        let stmts =
            parsed.into_iter().map(|p| (p.stmt.clone(), annotate(&p.stmt, &p.arena))).collect();
        (stmts, schema)
    }

    #[test]
    fn delta_build_matches_build_weighted() {
        let (stmts, schema) = parsed_with_anns(DELTA_SQL);
        let weights = [1usize, 7, 3, 2, 5, 4];
        let rebuilt = WorkloadProfile::build_weighted(
            stmts.iter().zip(weights).map(|((s, a), n)| (s, a, n)),
            &schema,
        );
        let mut delta = WorkloadProfile::default();
        for ((s, a), n) in stmts.iter().zip(weights) {
            let c = WorkloadProfile::contribution(s, a, &schema);
            delta.add_contribution(&c, n);
        }
        assert_eq!(delta, rebuilt, "delta-built profile must equal the from-scratch fold");
    }

    #[test]
    fn retract_insert_roundtrip_restores_profile() {
        let (stmts, schema) = parsed_with_anns(DELTA_SQL);
        let base = WorkloadProfile::build_weighted(
            stmts.iter().map(|(s, a)| (s, a, 2usize)),
            &schema,
        );
        // Retract then re-insert one statement's occurrences: the profile
        // must come back byte-identical (no zero-entry residue because the
        // entries are still supported by the remaining occurrence weight).
        for (s, a) in &stmts {
            let c = WorkloadProfile::contribution(s, a, &schema);
            let mut w = base.clone();
            w.sub_contribution(&c, 1);
            w.add_contribution(&c, 1);
            assert_eq!(w, base);
        }
    }

    #[test]
    fn full_retract_plus_usage_removal_reaches_empty() {
        let (stmts, schema) = parsed_with_anns(DELTA_SQL);
        let mut w = WorkloadProfile::build_weighted(
            stmts.iter().map(|(s, a)| (s, a, 3usize)),
            &schema,
        );
        let mut contributions = Vec::new();
        for (s, a) in &stmts {
            contributions.push(WorkloadProfile::contribution(s, a, &schema));
        }
        for c in &contributions {
            w.sub_contribution(c, 3);
        }
        // Counts hit zero; join edges and table refs vanish on their own.
        assert_eq!(w.statement_count, 0);
        assert!(w.join_edges.is_empty());
        assert!(w.table_refs.is_empty());
        // Usage entries await the caller's refcount decision.
        let keys: Vec<(String, String)> =
            w.iter_usage().map(|(t, c, _)| (t.to_string(), c.to_string())).collect();
        for (_, _, u) in w.iter_usage() {
            assert_eq!(*u, ColumnUsage::default(), "all counters retracted to zero");
        }
        for k in &keys {
            w.remove_usage(k);
        }
        assert_eq!(w, WorkloadProfile::default());
    }

    #[test]
    fn zero_usage_touches_survive_in_contributions() {
        // `IS NULL` creates a usage entry with all-zero counters; the
        // contribution must carry it so delta inserts create the same
        // entry set as a from-scratch fold (index_underuse's gate reads
        // entry existence).
        let (stmts, schema) =
            parsed_with_anns("CREATE TABLE t (a INT); SELECT * FROM t WHERE a IS NULL;");
        let (s, a) = &stmts[1];
        let c = WorkloadProfile::contribution(s, a, &schema);
        assert!(
            c.usage.iter().any(|((t, col), u)| {
                t == "t" && col == "a" && *u == ColumnUsage::default()
            }),
            "zero-usage touch must appear in the contribution: {c:?}"
        );
    }
}
