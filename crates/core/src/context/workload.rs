//! Workload profile: how the application's queries use tables and columns.
//!
//! The inter-query detection rules (§4.1 ❷) and the index advisor rules
//! (Example 5) need aggregate knowledge of the whole statement set: which
//! columns appear in equality predicates, which tables are joined on which
//! columns, how often each table is read or written.

use super::schema::SchemaCatalog;
use sqlcheck_parser::annotate::Annotations;
use sqlcheck_parser::ast::{Statement, TableRef};
use std::collections::BTreeMap;

/// Usage counters for one `(table, column)` pair.
#[derive(Debug, Clone, Default)]
pub struct ColumnUsage {
    /// Equality predicates (`=`, `IN`).
    pub eq_predicates: usize,
    /// Range predicates (`<`, `>`, `BETWEEN`, ...).
    pub range_predicates: usize,
    /// Pattern predicates (`LIKE`, `REGEXP`, ...).
    pub pattern_predicates: usize,
    /// GROUP BY occurrences.
    pub group_by: usize,
    /// ORDER BY occurrences.
    pub order_by: usize,
    /// Join-condition occurrences.
    pub join: usize,
    /// Writes (UPDATE SET / INSERT).
    pub writes: usize,
}

impl ColumnUsage {
    /// Total read-side references.
    pub fn reads(&self) -> usize {
        self.eq_predicates
            + self.range_predicates
            + self.pattern_predicates
            + self.group_by
            + self.order_by
            + self.join
    }
}

/// One join-graph edge observed in a query.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct JoinEdge {
    /// `(table, column)` — lexicographically smaller side first.
    pub left: (String, String),
    /// The other side.
    pub right: (String, String),
}

/// Aggregated workload profile.
#[derive(Debug, Clone, Default)]
pub struct WorkloadProfile {
    /// Per-(table-lowercase, column-lowercase) usage counters.
    usage: BTreeMap<(String, String), ColumnUsage>,
    /// Join edges with observation counts.
    pub join_edges: BTreeMap<JoinEdge, usize>,
    /// Statements per table (reads + writes).
    pub table_refs: BTreeMap<String, usize>,
    /// Total statements profiled.
    pub statement_count: usize,
}

impl WorkloadProfile {
    /// Build a profile from annotated statements, resolving alias
    /// qualifiers against each statement's own scope and falling back to
    /// the schema catalog for unqualified columns. Takes borrowed pairs so
    /// callers (notably `ContextBuilder::build`) never deep-clone the
    /// statement list just to profile it.
    pub fn build<'a>(
        stmts: impl IntoIterator<Item = (&'a Statement, &'a Annotations)>,
        schema: &SchemaCatalog,
    ) -> Self {
        Self::build_weighted(stmts.into_iter().map(|(s, a)| (s, a, 1)), schema)
    }

    /// Build a profile from *unique* annotated statements, each weighted
    /// by its occurrence count. Every profile counter is additive over
    /// statements, so folding one representative `n` times heavier is
    /// identical to folding `n` duplicates individually — this is what
    /// lets the parse-once front-end profile a workload in O(unique
    /// texts) instead of O(statements).
    pub fn build_weighted<'a>(
        stmts: impl IntoIterator<Item = (&'a Statement, &'a Annotations, usize)>,
        schema: &SchemaCatalog,
    ) -> Self {
        let mut w = WorkloadProfile::default();
        for (stmt, ann, n) in stmts {
            w.statement_count += n;
            let scope = Scope::of(stmt);
            for t in &ann.tables {
                *w.table_refs.entry(t.to_ascii_lowercase()).or_default() += n;
            }
            for p in &ann.predicates {
                let Some(table) = scope.resolve(p.qualifier.as_deref(), &p.column, schema) else {
                    continue;
                };
                let u = w.usage_mut(&table, &p.column);
                match p.op.as_str() {
                    "=" | "==" | "IN" | "<=>" => u.eq_predicates += n,
                    "LIKE" | "ILIKE" | "REGEXP" | "GLOB" | "SIMILAR TO" => {
                        u.pattern_predicates += n
                    }
                    "IS NULL" => {}
                    _ => u.range_predicates += n,
                }
            }
            for c in &ann.columns {
                use sqlcheck_parser::annotate::ColumnRole::*;
                let Some(table) = scope.resolve(c.qualifier.as_deref(), &c.column, schema) else {
                    continue;
                };
                let u = w.usage_mut(&table, &c.column);
                match c.role {
                    Grouped => u.group_by += n,
                    Ordered => u.order_by += n,
                    Joined => u.join += n,
                    Written => u.writes += n,
                    _ => {}
                }
            }
            for jc in &ann.join_conditions {
                let (Some(lt), Some((rq, rc))) = (
                    scope.resolve(jc.left.0.as_deref(), &jc.left.1, schema),
                    jc.right.clone(),
                ) else {
                    continue;
                };
                let Some(rt) = scope.resolve(rq.as_deref(), &rc, schema) else { continue };
                let a = (lt.to_ascii_lowercase(), jc.left.1.to_ascii_lowercase());
                let b = (rt.to_ascii_lowercase(), rc.to_ascii_lowercase());
                let edge = if a <= b {
                    JoinEdge { left: a, right: b }
                } else {
                    JoinEdge { left: b, right: a }
                };
                *w.join_edges.entry(edge).or_default() += n;
            }
        }
        w
    }

    fn usage_mut(&mut self, table: &str, column: &str) -> &mut ColumnUsage {
        self.usage
            .entry((table.to_ascii_lowercase(), column.to_ascii_lowercase()))
            .or_default()
    }

    /// Usage counters for `(table, column)`, if any reference was seen.
    pub fn usage(&self, table: &str, column: &str) -> Option<&ColumnUsage> {
        self.usage.get(&(table.to_ascii_lowercase(), column.to_ascii_lowercase()))
    }

    /// Iterate all `(table, column, usage)` entries.
    pub fn iter_usage(&self) -> impl Iterator<Item = (&str, &str, &ColumnUsage)> {
        self.usage.iter().map(|((t, c), u)| (t.as_str(), c.as_str(), u))
    }

    /// Number of statements referencing a table.
    pub fn table_ref_count(&self, table: &str) -> usize {
        self.table_refs.get(&table.to_ascii_lowercase()).copied().unwrap_or(0)
    }
}

/// Alias scope of one statement.
struct Scope {
    /// `(binding-lowercase, table name)` pairs.
    bindings: Vec<(String, String)>,
}

impl Scope {
    fn of(stmt: &Statement) -> Scope {
        let mut bindings = Vec::new();
        let mut add_ref = |t: &TableRef| {
            if t.subquery.is_none() {
                bindings.push((t.binding().to_ascii_lowercase(), t.name.name().to_string()));
                // The bare table name also resolves even when aliased.
                bindings
                    .push((t.name.name().to_ascii_lowercase(), t.name.name().to_string()));
            }
        };
        match stmt {
            Statement::Select(s) => {
                for t in s.tables() {
                    add_ref(t);
                }
            }
            Statement::Insert(i) => {
                bindings.push((
                    i.table.name().to_ascii_lowercase(),
                    i.table.name().to_string(),
                ));
            }
            Statement::Update(u) => {
                bindings.push((
                    u.table.name().to_ascii_lowercase(),
                    u.table.name().to_string(),
                ));
            }
            Statement::Delete(d) => {
                bindings.push((
                    d.table.name().to_ascii_lowercase(),
                    d.table.name().to_string(),
                ));
            }
            _ => {}
        }
        Scope { bindings }
    }

    /// Resolve a column reference to its table name.
    fn resolve(
        &self,
        qualifier: Option<&str>,
        column: &str,
        schema: &SchemaCatalog,
    ) -> Option<String> {
        if let Some(q) = qualifier {
            let ql = q.to_ascii_lowercase();
            return self
                .bindings
                .iter()
                .find(|(b, _)| *b == ql)
                .map(|(_, t)| t.clone())
                .or(Some(q.to_string()));
        }
        // Unqualified: unique scope table wins; otherwise consult the schema.
        let mut distinct_tables: Vec<&String> = Vec::new();
        for (_, t) in &self.bindings {
            if !distinct_tables.iter().any(|x| x.eq_ignore_ascii_case(t)) {
                distinct_tables.push(t);
            }
        }
        match distinct_tables.len() {
            0 => None,
            1 => Some(distinct_tables[0].clone()),
            _ => distinct_tables
                .iter()
                .find(|t| {
                    schema.table(t).map(|ti| ti.column(column).is_some()).unwrap_or(false)
                })
                .map(|t| t.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlcheck_parser::{annotate, parse};

    fn profile(sql: &str) -> (WorkloadProfile, SchemaCatalog) {
        let parsed = parse(sql);
        let schema = SchemaCatalog::from_statements(parsed.iter().map(|p| &p.stmt));
        let stmts: Vec<_> =
            parsed.into_iter().map(|p| (p.stmt.clone(), annotate(&p.stmt, &p.arena))).collect();
        (WorkloadProfile::build(stmts.iter().map(|(s, a)| (s, a)), &schema), schema)
    }

    #[test]
    fn eq_predicates_counted_per_table_column() {
        let (w, _) = profile(
            "CREATE TABLE t (a INT, b INT);\
             SELECT * FROM t WHERE a = 1;\
             SELECT * FROM t WHERE a = 2 AND b > 3;",
        );
        assert_eq!(w.usage("t", "a").unwrap().eq_predicates, 2);
        assert_eq!(w.usage("t", "b").unwrap().range_predicates, 1);
    }

    #[test]
    fn alias_resolution() {
        let (w, _) = profile(
            "CREATE TABLE tenant (id INT, zone INT);\
             SELECT * FROM tenant AS t WHERE t.zone = 1;",
        );
        assert_eq!(w.usage("tenant", "zone").unwrap().eq_predicates, 1);
    }

    #[test]
    fn unqualified_column_resolved_via_schema() {
        let (w, _) = profile(
            "CREATE TABLE a (x INT);\
             CREATE TABLE b (y INT);\
             SELECT * FROM a JOIN b ON a.x = b.y WHERE y = 5;",
        );
        assert_eq!(w.usage("b", "y").unwrap().eq_predicates, 1);
        assert!(w.usage("a", "y").is_none());
    }

    #[test]
    fn join_edges_normalised() {
        let (w, _) = profile(
            "SELECT * FROM q JOIN t ON t.tid = q.tid;\
             SELECT * FROM t JOIN q ON q.tid = t.tid;",
        );
        assert_eq!(w.join_edges.len(), 1, "both orders collapse to one edge");
        assert_eq!(*w.join_edges.values().next().unwrap(), 2);
    }

    #[test]
    fn writes_counted() {
        let (w, _) = profile(
            "CREATE TABLE t (a INT, b INT);\
             UPDATE t SET a = 5 WHERE b = 1;\
             INSERT INTO t (a, b) VALUES (1, 2);",
        );
        assert_eq!(w.usage("t", "a").unwrap().writes, 2);
        assert_eq!(w.usage("t", "b").unwrap().eq_predicates, 1);
    }

    #[test]
    fn group_and_order_counted() {
        let (w, _) = profile(
            "CREATE TABLE t (g INT, v INT);\
             SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g;",
        );
        let u = w.usage("t", "g").unwrap();
        assert_eq!(u.group_by, 1);
        assert_eq!(u.order_by, 1);
    }

    #[test]
    fn table_ref_counts() {
        let (w, _) = profile("SELECT * FROM t; SELECT * FROM t; SELECT * FROM u;");
        assert_eq!(w.table_ref_count("t"), 2);
        assert_eq!(w.table_ref_count("u"), 1);
        assert_eq!(w.statement_count, 3);
    }
}
