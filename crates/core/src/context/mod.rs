//! The application context (Algorithm 1's `Context-Builder`).
//!
//! The context combines three ingredients:
//!
//! 1. **query context** — every statement, parsed and annotated;
//! 2. **schema context** — the catalog folded from DDL (or, when a
//!    database is attached, from its live schema);
//! 3. **data context** — per-column profiles sampled from the database,
//!    when one is available.
//!
//! Detection rules receive the whole [`Context`]; contextual rules use it
//! to "resolve cases where the presence or absence of an AP cannot be
//! determined with high precision by only looking at a given query".

pub mod data;
pub mod schema;
pub mod workload;

pub use data::{ColumnProfile, DataAnalysisConfig, DataProfile, TableProfile};
pub use schema::{CheckInfo, ColumnInfo, FkInfo, IndexInfo, SchemaCatalog, TableInfo};
pub use workload::{ColumnUsage, JoinEdge, WorkloadProfile};

use sqlcheck_minidb::database::Database;
use sqlcheck_parser::annotate::{annotate, Annotations};
use sqlcheck_parser::ast::ParsedStatement;
use sqlcheck_parser::parse;

/// One statement with its annotations, as stored in the context.
#[derive(Debug, Clone)]
pub struct AnalyzedStatement {
    /// The parsed statement.
    pub parsed: ParsedStatement,
    /// Its annotation digest.
    pub ann: Annotations,
    /// Literal-sensitive 128-bit content hash of the token stream
    /// (span-insensitive), precomputed at build time so batch detection
    /// can group duplicate statements in O(1) per statement without
    /// re-walking tokens.
    pub text_hash: u128,
}

/// The application context.
#[derive(Debug, Clone, Default)]
pub struct Context {
    /// All analysed statements, in script order.
    pub statements: Vec<AnalyzedStatement>,
    /// Schema catalog (from DDL and/or the attached database).
    pub schema: SchemaCatalog,
    /// Workload profile.
    pub workload: WorkloadProfile,
    /// Data profiles, when a database was attached.
    pub data: Option<DataProfile>,
}

impl Context {
    /// Statement count.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// True when no statements were analysed.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Whether data analysis is available.
    pub fn has_data(&self) -> bool {
        self.data.is_some()
    }

    /// Re-profile the database, replacing the cached data context. The
    /// paper's data analyzer "periodically refreshes the context over
    /// time [and] whenever the schema evolves" (§4.2) — profiles are
    /// cached and reused across checks, so a long-lived context must be
    /// refreshed explicitly when the data changes underneath it.
    pub fn refresh_data(&mut self, db: &Database, cfg: &DataAnalysisConfig) {
        for table in db.tables() {
            if self.schema.table(&table.schema.name).is_none() {
                let ddl = synthesize_ddl(table);
                for p in parse(&ddl) {
                    self.schema.apply(&p.stmt);
                }
            }
        }
        self.data = Some(DataProfile::build(db, cfg));
    }
}

/// Builder for [`Context`].
#[derive(Default)]
pub struct ContextBuilder {
    statements: Vec<ParsedStatement>,
    database: Option<(Database, DataAnalysisConfig)>,
}

impl ContextBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add every statement in a SQL script.
    pub fn add_script(mut self, script: &str) -> Self {
        self.statements.extend(parse(script));
        self
    }

    /// Add pre-parsed statements.
    pub fn add_statements(mut self, stmts: impl IntoIterator<Item = ParsedStatement>) -> Self {
        self.statements.extend(stmts);
        self
    }

    /// Attach a database for data analysis (the optional input of Fig 4).
    pub fn with_database(mut self, db: Database, cfg: DataAnalysisConfig) -> Self {
        self.database = Some((db, cfg));
        self
    }

    /// Build the context: annotate queries, fold the schema, profile the
    /// workload, and (when a database is attached) profile the data.
    pub fn build(self) -> Context {
        let analyzed: Vec<AnalyzedStatement> = self
            .statements
            .into_iter()
            .map(|parsed| {
                let ann = annotate(&parsed.stmt);
                let text_hash = parsed.content_hash();
                AnalyzedStatement { parsed, ann, text_hash }
            })
            .collect();

        let mut schema =
            SchemaCatalog::from_statements(analyzed.iter().map(|a| &a.parsed.stmt));

        // When a database is attached, its live schema augments the DDL-
        // derived catalog (tables created outside the script become
        // visible to the rules).
        let data = self.database.map(|(db, cfg)| {
            for table in db.tables() {
                if schema.table(&table.schema.name).is_none() {
                    let ddl = synthesize_ddl(table);
                    for p in parse(&ddl) {
                        schema.apply(&p.stmt);
                    }
                }
            }
            DataProfile::build(&db, &cfg)
        });

        // Borrow, don't clone: profiling must not duplicate every parsed
        // statement and annotation on the hot path.
        let workload =
            WorkloadProfile::build(analyzed.iter().map(|a| (&a.parsed.stmt, &a.ann)), &schema);

        Context { statements: analyzed, schema, workload, data }
    }
}

/// Render a minidb table schema as `CREATE TABLE` DDL so the generic
/// catalog code can ingest it.
fn synthesize_ddl(table: &sqlcheck_minidb::table::Table) -> String {
    use sqlcheck_minidb::value::DataType as DT;
    let mut cols: Vec<String> = table
        .schema
        .columns
        .iter()
        .map(|c| {
            let ty = match c.dtype {
                DT::Int => "INTEGER",
                DT::Float => "FLOAT",
                DT::Text => "TEXT",
                DT::Bool => "BOOLEAN",
                DT::Timestamp => {
                    if c.with_timezone {
                        "TIMESTAMPTZ"
                    } else {
                        "TIMESTAMP"
                    }
                }
            };
            let nn = if c.not_null { " NOT NULL" } else { "" };
            format!("{} {}{}", c.name, ty, nn)
        })
        .collect();
    if !table.schema.primary_key.is_empty() {
        cols.push(format!("PRIMARY KEY ({})", table.schema.primary_key.join(", ")));
    }
    for fk in &table.schema.foreign_keys {
        cols.push(format!(
            "FOREIGN KEY ({}) REFERENCES {} ({})",
            fk.columns.join(", "),
            fk.ref_table,
            fk.ref_columns.join(", ")
        ));
    }
    format!("CREATE TABLE {} ({})", table.schema.name, cols.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlcheck_minidb::prelude::*;

    #[test]
    fn builds_query_and_schema_context() {
        let ctx = ContextBuilder::new()
            .add_script(
                "CREATE TABLE t (a INT PRIMARY KEY, b INT);\
                 SELECT * FROM t WHERE a = 1;",
            )
            .build();
        assert_eq!(ctx.len(), 2);
        assert!(ctx.schema.table("t").is_some());
        assert_eq!(ctx.workload.usage("t", "a").unwrap().eq_predicates, 1);
        assert!(!ctx.has_data());
    }

    #[test]
    fn database_schema_merged_into_catalog() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("Users")
                .column(sqlcheck_minidb::schema::Column::new("User_ID", DataType::Text).not_null())
                .column(sqlcheck_minidb::schema::Column::new("Name", DataType::Text))
                .primary_key(&["User_ID"]),
        )
        .unwrap();
        db.insert("Users", vec![Value::text("U1"), Value::text("N")]).unwrap();

        let ctx = ContextBuilder::new()
            .add_script("SELECT * FROM Users WHERE Name = 'N'")
            .with_database(db, DataAnalysisConfig::default())
            .build();
        let t = ctx.schema.table("users").expect("table from db visible in catalog");
        assert!(t.has_primary_key());
        assert!(ctx.has_data());
        assert_eq!(ctx.data.as_ref().unwrap().table("users").unwrap().row_count, 1);
    }

    #[test]
    fn empty_context() {
        let ctx = ContextBuilder::new().build();
        assert!(ctx.is_empty());
        assert_eq!(ctx.schema.table_count(), 0);
    }

    #[test]
    fn refresh_data_tracks_schema_and_data_evolution() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("a")
                .column(sqlcheck_minidb::schema::Column::new("x", DataType::Int).not_null())
                .primary_key(&["x"]),
        )
        .unwrap();
        db.insert("a", vec![Value::Int(1)]).unwrap();
        let cfg = DataAnalysisConfig::default();
        let mut ctx = ContextBuilder::new().with_database(db.clone(), cfg.clone()).build();
        assert_eq!(ctx.data.as_ref().unwrap().table("a").unwrap().row_count, 1);

        // The database evolves: a new table appears, rows accrete.
        db.create_table(
            TableSchema::new("b")
                .column(sqlcheck_minidb::schema::Column::new("y", DataType::Int).not_null())
                .primary_key(&["y"]),
        )
        .unwrap();
        db.insert("a", vec![Value::Int(2)]).unwrap();
        // Stale until refreshed.
        assert!(ctx.data.as_ref().unwrap().table("b").is_none());
        ctx.refresh_data(&db, &cfg);
        assert_eq!(ctx.data.as_ref().unwrap().table("a").unwrap().row_count, 2);
        assert!(ctx.data.as_ref().unwrap().table("b").is_some());
        assert!(ctx.schema.table("b").is_some(), "schema catalog follows");
    }
}
