//! The application context (Algorithm 1's `Context-Builder`).
//!
//! The context combines three ingredients:
//!
//! 1. **query context** — every statement, parsed and annotated;
//! 2. **schema context** — the catalog folded from DDL (or, when a
//!    database is attached, from its live schema);
//! 3. **data context** — per-column profiles sampled from the database,
//!    when one is available.
//!
//! Detection rules receive the whole [`Context`]; contextual rules use it
//! to "resolve cases where the presence or absence of an AP cannot be
//! determined with high precision by only looking at a given query".

pub mod data;
pub mod schema;
pub mod workload;

pub use data::{ColumnProfile, DataAnalysisConfig, DataProfile, TableProfile};
pub use schema::{CheckInfo, ColumnInfo, FkInfo, IndexInfo, SchemaCatalog, SchemaVersions, TableInfo};
pub use workload::{ColumnUsage, JoinEdge, StatementContribution, WorkloadProfile};

use crate::hashutil::Prehashed;
use sqlcheck_minidb::database::Database;
use sqlcheck_parser::annotate::{annotate, Annotations};
use sqlcheck_parser::ast::ParsedStatement;
use sqlcheck_parser::diag::{DiagKind, Diagnostic, Limits};
use sqlcheck_parser::parse;
use sqlcheck_parser::parser::{diagnose_parsed, parse_raw_limited_dialect};
use sqlcheck_parser::fingerprint::fingerprint_of;
use sqlcheck_parser::splitter::{split_deduped_dialect, split_stream_parallel_dialect, RawStatement};
use sqlcheck_parser::Dialect;
use sqlcheck_parser::token::Span;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One statement with its annotations, as stored in the context.
///
/// The parse tree and annotation digest are held behind [`Arc`]s: the
/// parse-once front-end parses and annotates each *unique* statement text
/// exactly once and shares the result across every duplicate occurrence.
/// Duplicates are therefore value-identical (same text, same tree, same
/// annotations). Token *spans* inside the shared tree refer to the first
/// occurrence; [`AnalyzedStatement::span`] is the per-occurrence side
/// record, so consumers that need the exact source location of a
/// duplicate (reports, fixes) read it from here, never from the tree.
#[derive(Debug, Clone)]
pub struct AnalyzedStatement {
    /// The parsed statement (shared across duplicate texts).
    pub parsed: Arc<ParsedStatement>,
    /// Its annotation digest (shared across duplicate texts).
    pub ann: Arc<Annotations>,
    /// Literal-sensitive 128-bit content hash of the token stream
    /// (span-insensitive), precomputed at build time so batch detection
    /// can group duplicate statements in O(1) per statement without
    /// re-walking tokens.
    pub text_hash: u128,
    /// Literal-insensitive template fingerprint
    /// ([`sqlcheck_parser::fingerprint`]), computed by the fused splitter
    /// in the same pass that lexed the statement — batch detection counts
    /// unique templates without re-walking tokens.
    pub template_hash: u64,
    /// Byte range of **this occurrence** in the original script — not
    /// shared across duplicates. Zero-length for statements added via
    /// [`ContextBuilder::add_statements`] without source text.
    pub span: Span,
    /// Degradation diagnostics from parsing this statement's unique text
    /// (shared across duplicate occurrences). `statement` indexes are
    /// unset here; consumers attribute the first occurrence.
    pub diags: Arc<[Diagnostic]>,
}

/// The application context.
#[derive(Debug, Clone, Default)]
pub struct Context {
    /// All analysed statements, in script order.
    pub statements: Vec<AnalyzedStatement>,
    /// Schema catalog (from DDL and/or the attached database).
    pub schema: SchemaCatalog,
    /// Workload profile.
    pub workload: WorkloadProfile,
    /// Data profiles, when a database was attached.
    pub data: Option<DataProfile>,
    /// Script-level degradation diagnostics not tied to one statement
    /// (e.g. [`DiagKind::DelimiterFallbackSequential`]).
    pub diagnostics: Vec<Diagnostic>,
    /// Epoch digest ([`Limits::epoch`]) of the budgets the statements
    /// were parsed under — folded into cache validity keys, because a
    /// budget change can alter the parse of the same statement text.
    pub limits_epoch: u64,
    /// The dialect the statements were lexed, split, and parsed under
    /// (after auto-detection, when enabled). Folded into cache validity
    /// keys: the same script text splits and parses differently under a
    /// different dialect.
    pub dialect: Dialect,
}

impl Context {
    /// Statement count.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// True when no statements were analysed.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Whether data analysis is available.
    pub fn has_data(&self) -> bool {
        self.data.is_some()
    }

    /// Re-profile the database, replacing the cached data context. The
    /// paper's data analyzer "periodically refreshes the context over
    /// time [and] whenever the schema evolves" (§4.2) — profiles are
    /// cached and reused across checks, so a long-lived context must be
    /// refreshed explicitly when the data changes underneath it.
    pub fn refresh_data(&mut self, db: &Database, cfg: &DataAnalysisConfig) {
        for table in db.tables() {
            if self.schema.table(&table.schema.name).is_none() {
                let ddl = synthesize_ddl(table);
                for p in parse(&ddl) {
                    self.schema.apply(&p.stmt);
                }
            }
        }
        self.data = Some(DataProfile::build(db, cfg));
    }
}

/// Instrumentation of one [`ContextBuilder::build_with_stats`] run: where
/// the front-end (split → parse → annotate → context fold) spent its time,
/// and how effective the parse-once dedup was.
#[derive(Debug, Clone, Default)]
pub struct FrontendStats {
    /// Statements in the context (after splitting, duplicates included).
    pub statements: usize,
    /// Unique statement texts — the number of parses/annotations actually
    /// performed when dedup is enabled.
    pub unique_texts: usize,
    /// Worker threads used for the parse/annotate phases (1 = sequential).
    pub threads: usize,
    /// Wall-clock microseconds in the fused split pass: lexing, statement
    /// splitting, content hashing, template fingerprinting, and dedup
    /// grouping — one streaming pass over the script bytes. Excludes
    /// unique-text materialisation ([`FrontendStats::materialize_micros`]).
    pub split_micros: u128,
    /// Wall-clock microseconds spent materialising token streams for
    /// unique statement texts at intake (re-lexing each unique span into
    /// owned tokens). Previously lumped into `split_micros`.
    pub materialize_micros: u128,
    /// Wall-clock microseconds spent in dedup intake bookkeeping:
    /// mapping script-local unique slots onto builder slots and
    /// recording per-occurrence spans. Previously lumped into
    /// `split_micros`, which inflated the apparent split cost of warm
    /// re-checks (the cache short-circuits materialization, but intake
    /// still walks every occurrence).
    pub intake_micros: u128,
    /// Wall-clock microseconds spent grouping texts and parsing unique
    /// statements.
    pub parse_micros: u128,
    /// Wall-clock microseconds spent annotating unique statements.
    pub annotate_micros: u128,
    /// Wall-clock microseconds spent folding schema, workload, and data
    /// context.
    pub context_micros: u128,
}

/// Options for the parse-once front-end.
#[derive(Debug, Clone)]
pub struct FrontendOptions {
    /// Group duplicate statement texts and parse + annotate each unique
    /// text exactly once, sharing the result via `Arc`. Output is
    /// value-identical to the per-statement path.
    pub dedup: bool,
    /// Parse/annotate unique texts across scoped worker threads. Ignored
    /// (always sequential) when the `parallel` cargo feature is disabled.
    pub parallel: bool,
    /// Worker-thread count; `None` uses the machine's available
    /// parallelism.
    pub threads: Option<usize>,
    /// Per-statement resource budgets; over-budget statements degrade to
    /// `Other` with an [`DiagKind::OverLimit`] diagnostic.
    pub limits: Limits,
    /// The dialect the whole front door (lexer → splitter → parser)
    /// applies. [`Dialect::Generic`] is the historical tolerant union
    /// and is byte-identical to the pre-dialect behaviour.
    pub dialect: Dialect,
    /// Guess the dialect from the first added script's contents
    /// ([`Dialect::detect`]) when `dialect` is [`Dialect::Generic`]. A
    /// successful guess switches the front door for every script in this
    /// build and emits a [`DiagKind::DialectGuessed`] diagnostic. Off by
    /// default — library callers opt in; the CLI enables it whenever no
    /// explicit `--dialect` is given.
    pub detect_dialect: bool,
}

impl Default for FrontendOptions {
    fn default() -> Self {
        FrontendOptions {
            dedup: true,
            parallel: cfg!(feature = "parallel"),
            threads: None,
            limits: Limits::default(),
            dialect: Dialect::Generic,
            detect_dialect: false,
        }
    }
}

impl FrontendOptions {
    /// The pre-pipeline behaviour: parse and annotate every statement
    /// individually, single-threaded. Kept as the benchmark baseline.
    pub fn legacy() -> Self {
        FrontendOptions { dedup: false, parallel: false, ..FrontendOptions::default() }
    }

    /// Dedup on, threading off — the deterministic single-core pipeline.
    pub fn sequential() -> Self {
        FrontendOptions { parallel: false, ..FrontendOptions::default() }
    }
}

/// One unique statement text during the build: its (to-be-)parsed tree,
/// annotations, content hash, template fingerprint, and occurrence count.
struct UniqueEntry {
    raw: Option<RawStatement>,
    parsed: Option<Arc<ParsedStatement>>,
    ann: Option<Arc<Annotations>>,
    diags: Arc<[Diagnostic]>,
    hash: u128,
    fingerprint: u64,
    count: usize,
}

/// Empty shared diagnostic slice (the common, fully-shaped case).
fn no_diags() -> Arc<[Diagnostic]> {
    Arc::from(Vec::new())
}

/// Builder for [`Context`] — the parse-once front-end.
///
/// Scripts enter through the fused streaming splitter
/// ([`sqlcheck_parser::splitter::split_stream`]): a single pass (chunked
/// across scoped worker threads for large scripts) lexes, splits,
/// content-hashes, and fingerprints every statement and groups duplicate
/// texts — before parsing, and without ever materialising a token
/// stream. Token vectors exist only for **unique** texts, which are
/// materialised at intake and then parsed + annotated exactly once at
/// build time (optionally across scoped worker threads), with the
/// resulting AST/annotations shared across duplicate occurrences via
/// [`Arc`].
#[derive(Default)]
pub struct ContextBuilder {
    /// Unique statement texts, in first-occurrence order.
    uniques: Vec<UniqueEntry>,
    /// Statement order: index into `uniques` per statement.
    order: Vec<usize>,
    /// Per-occurrence source spans, parallel to `order`. Dedup shares the
    /// parse tree across duplicates, but every occurrence keeps its own
    /// span so detections and fixes can point at the exact location.
    spans: Vec<Span>,
    /// Content hash → slot in `uniques` (only populated when deduping).
    slot_of: HashMap<u128, usize, Prehashed>,
    database: Option<(Arc<Database>, DataAnalysisConfig)>,
    opts: FrontendOptions,
    split_micros: u128,
    materialize_micros: u128,
    intake_micros: u128,
    /// Whether any added script contained a `DELIMITER` directive
    /// (deterministic across split thread counts — see
    /// [`sqlcheck_parser::splitter::DedupedSplit`]).
    saw_delimiter_directive: bool,
    /// The dialect the front door settled on, fixed by the first
    /// `add_script` call (auto-detection, when enabled, runs exactly
    /// once — on that first script — so every script in the build is
    /// processed under one dialect).
    resolved_dialect: Option<Dialect>,
    /// Pending [`DiagKind::DialectGuessed`] diagnostic, emitted into the
    /// built context when auto-detection fired.
    dialect_diag: Option<Diagnostic>,
}

impl ContextBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one intake statement with its content hash and occurrence
    /// span, deduping when enabled. `make` materialises the payload (and
    /// computes the template fingerprint) only for unique texts; the span
    /// is recorded for *every* occurrence.
    fn intake(
        &mut self,
        hash: u128,
        span: Span,
        make: impl FnOnce() -> (Option<RawStatement>, Option<Arc<ParsedStatement>>, u64),
    ) {
        self.spans.push(span);
        if self.opts.dedup {
            if let Some(&slot) = self.slot_of.get(&hash) {
                self.uniques[slot].count += 1;
                self.order.push(slot);
                return;
            }
            self.slot_of.insert(hash, self.uniques.len());
        }
        let (raw, parsed, fingerprint) = make();
        self.order.push(self.uniques.len());
        self.uniques.push(UniqueEntry {
            raw,
            parsed,
            ann: None,
            diags: no_diags(),
            hash,
            fingerprint,
            count: 1,
        });
    }

    /// Resolve the dialect for script intake. The first call fixes it:
    /// when auto-detection is enabled and the configured dialect is
    /// [`Dialect::Generic`], the first script's contents may switch the
    /// front door ([`Dialect::detect`]) — recorded as a
    /// [`DiagKind::DialectGuessed`] diagnostic on the built context.
    fn resolve_dialect(&mut self, script: &str) -> Dialect {
        if let Some(d) = self.resolved_dialect {
            return d;
        }
        let mut d = self.opts.dialect;
        if self.opts.detect_dialect && d == Dialect::Generic {
            if let Some(guess) = Dialect::detect(script) {
                d = guess;
                self.dialect_diag = Some(Diagnostic::new(
                    DiagKind::DialectGuessed,
                    format!(
                        "no dialect specified; guessed `{guess}` from script \
                         contents (pass an explicit dialect to suppress)"
                    ),
                ));
            }
        }
        self.resolved_dialect = Some(d);
        d
    }

    /// Decide the chunk-parallel split worker count for one script.
    fn split_threads(&self, len: usize) -> usize {
        // Below ~16 KiB the pre-scan + spawn overhead outweighs the lex
        // work; the chunked path stays byte-identical either way. For
        // larger scripts the splitter additionally size-clamps the chunk
        // count so every chunk carries at least ~16 KiB.
        if !cfg!(feature = "parallel") || !self.opts.parallel || len < 16 * 1024 {
            return 1;
        }
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.opts.threads.unwrap_or(hw).max(1)
    }

    /// Add every statement in a SQL script through the fused streaming
    /// front door: one pass (chunk-parallel for large scripts) lexes,
    /// splits, content-hashes, and fingerprints the script, and groups
    /// duplicate texts — before any parsing. Token streams are
    /// materialised only for texts this builder has not seen before;
    /// duplicates cost one map lookup at split time and nothing here.
    pub fn add_script(mut self, script: &str) -> Self {
        let t = Instant::now();
        let dialect = self.resolve_dialect(script);
        let threads = self.split_threads(script.len());
        let mut mat_micros = 0u128;
        if self.opts.dedup {
            let deduped = split_deduped_dialect(script, threads, dialect);
            // The fused pass above is the split; everything below is
            // intake bookkeeping, accounted separately so warm re-checks
            // (materialization short-circuited, bookkeeping still O(
            // occurrences)) report honest split numbers.
            self.split_micros += t.elapsed().as_micros();
            let t_intake = Instant::now();
            self.saw_delimiter_directive |= deduped.saw_delimiter_directive;
            // Map script-local unique slots onto builder slots,
            // materialising only texts no earlier script contributed.
            let mut slot_map: Vec<usize> = Vec::with_capacity(deduped.uniques.len());
            for u in &deduped.uniques {
                let slot = match self.slot_of.get(&u.content_hash) {
                    Some(&slot) => slot,
                    None => {
                        let slot = self.uniques.len();
                        self.slot_of.insert(u.content_hash, slot);
                        let tm = Instant::now();
                        let raw = u.materialize(script);
                        mat_micros += tm.elapsed().as_micros();
                        self.uniques.push(UniqueEntry {
                            raw: Some(raw),
                            parsed: None,
                            ann: None,
                            diags: no_diags(),
                            hash: u.content_hash,
                            fingerprint: u.fingerprint,
                            count: 0,
                        });
                        slot
                    }
                };
                slot_map.push(slot);
            }
            for (local, span) in deduped.occurrences {
                let slot = slot_map[local as usize];
                self.uniques[slot].count += 1;
                self.order.push(slot);
                self.spans.push(span);
            }
            self.intake_micros +=
                t_intake.elapsed().as_micros().saturating_sub(mat_micros);
            self.materialize_micros += mat_micros;
            return self;
        } else {
            // Legacy mode: every occurrence keeps its own entry (and is
            // parsed individually later).
            for s in split_stream_parallel_dialect(script, threads, dialect) {
                let tm = Instant::now();
                let raw = s.materialize_dialect(script, dialect);
                mat_micros += tm.elapsed().as_micros();
                self.order.push(self.uniques.len());
                self.spans.push(s.span);
                self.uniques.push(UniqueEntry {
                    raw: Some(raw),
                    parsed: None,
                    ann: None,
                    diags: no_diags(),
                    hash: s.content_hash,
                    fingerprint: s.fingerprint,
                    count: 1,
                });
            }
        }
        self.materialize_micros += mat_micros;
        self.split_micros += t.elapsed().as_micros().saturating_sub(mat_micros);
        self
    }

    /// Add pre-parsed statements (deduplicated against script statements
    /// by content hash, like everything else).
    pub fn add_statements(mut self, stmts: impl IntoIterator<Item = ParsedStatement>) -> Self {
        for p in stmts {
            let span = p
                .tokens
                .iter()
                .map(|t| t.span)
                .reduce(|a, b| a.merge(b))
                .unwrap_or(Span::new(0, 0));
            self.intake(p.content_hash(), span, || {
                let fingerprint = fingerprint_of(&p.tokens);
                (None, Some(Arc::new(p)), fingerprint)
            });
        }
        self
    }

    /// Attach a database for data analysis (the optional input of Fig 4).
    pub fn with_database(self, db: Database, cfg: DataAnalysisConfig) -> Self {
        self.with_shared_database(Arc::new(db), cfg)
    }

    /// Attach a shared database handle. Profiling only reads the
    /// database, so a caller that re-checks workloads repeatedly (e.g.
    /// [`crate::SqlCheck`] with an incremental cache) can hand the same
    /// `Arc` to every build instead of deep-cloning tables per check.
    pub fn with_shared_database(mut self, db: Arc<Database>, cfg: DataAnalysisConfig) -> Self {
        self.database = Some((db, cfg));
        self
    }

    /// Configure the front-end (dedup / threading). The default parses
    /// each unique text once, threaded when the `parallel` feature is on.
    ///
    /// Must be called before any statements are added: dedup happens at
    /// intake.
    pub fn with_frontend(mut self, opts: FrontendOptions) -> Self {
        assert!(
            self.order.is_empty(),
            "with_frontend must be called before add_script/add_statements"
        );
        self.opts = opts;
        self
    }

    /// Build the context: annotate queries, fold the schema, profile the
    /// workload, and (when a database is attached) profile the data.
    pub fn build(self) -> Context {
        self.build_with_stats().0
    }

    /// Like [`ContextBuilder::build`], also returning per-phase front-end
    /// instrumentation.
    pub fn build_with_stats(self) -> (Context, FrontendStats) {
        let mut uniques = self.uniques;
        let mut stats = FrontendStats {
            statements: self.order.len(),
            unique_texts: uniques.len(),
            split_micros: self.split_micros,
            materialize_micros: self.materialize_micros,
            intake_micros: self.intake_micros,
            threads: 1,
            ..FrontendStats::default()
        };

        // Parse phase: each unique text exactly once, in parallel when
        // allowed. Workers own disjoint contiguous chunks and write into
        // their own slots, so the result is deterministic regardless of
        // scheduling.
        let t_parse = Instant::now();
        let threads = plan_threads(&self.opts, uniques.len());
        stats.threads = threads;
        let limits = self.opts.limits;
        let dialect = self.resolved_dialect.unwrap_or(self.opts.dialect);
        for_each_entry(&mut uniques, threads, |e| {
            if let Some(raw) = e.raw.take() {
                let (p, diags) = parse_raw_limited_dialect(raw, &limits, dialect);
                e.parsed = Some(Arc::new(p));
                if !diags.is_empty() {
                    e.diags = diags.into();
                }
            } else if let Some(p) = &e.parsed {
                // Pre-parsed intake (add_statements): re-derive the
                // statement-level diagnostics from the existing tree.
                let diags = diagnose_parsed(p);
                if !diags.is_empty() {
                    e.diags = diags.into();
                }
            }
        });
        stats.parse_micros = t_parse.elapsed().as_micros();

        // Phase 3: annotate each unique parse tree exactly once.
        let t_ann = Instant::now();
        for_each_entry(&mut uniques, threads, |e| {
            let parsed = e.parsed.as_ref().expect("parsed in phase 2");
            e.ann = Some(Arc::new(annotate(&parsed.stmt, &parsed.arena)));
        });
        stats.annotate_micros = t_ann.elapsed().as_micros();

        // Phase 4: assemble statements in script order (duplicates share
        // the unique entry's Arcs) and fold the context.
        let t_ctx = Instant::now();
        let analyzed: Vec<AnalyzedStatement> = self
            .order
            .iter()
            .zip(&self.spans)
            .map(|(&slot, &span)| {
                let u = &uniques[slot];
                AnalyzedStatement {
                    parsed: u.parsed.clone().expect("parsed in phase 2"),
                    ann: u.ann.clone().expect("annotated in phase 3"),
                    text_hash: u.hash,
                    template_hash: u.fingerprint,
                    span,
                    diags: u.diags.clone(),
                }
            })
            .collect();

        let mut schema =
            SchemaCatalog::from_statements(analyzed.iter().map(|a| &a.parsed.stmt));

        // When a database is attached, its live schema augments the DDL-
        // derived catalog (tables created outside the script become
        // visible to the rules).
        let data = self.database.map(|(db, cfg)| {
            for table in db.tables() {
                if schema.table(&table.schema.name).is_none() {
                    let ddl = synthesize_ddl(table);
                    for p in parse(&ddl) {
                        schema.apply(&p.stmt);
                    }
                }
            }
            DataProfile::build(&db, &cfg)
        });

        // Profile once per unique text, weighted by occurrence count —
        // every profile counter is additive over statements, so this is
        // identical to folding each duplicate individually.
        let workload = WorkloadProfile::build_weighted(
            uniques.iter().map(|u| {
                (
                    &u.parsed.as_ref().expect("parsed").stmt,
                    u.ann.as_ref().expect("annotated").as_ref(),
                    u.count,
                )
            }),
            &schema,
        );
        stats.context_micros = t_ctx.elapsed().as_micros();

        let mut diagnostics = Vec::new();
        if let Some(d) = self.dialect_diag {
            diagnostics.push(d);
        }
        if self.saw_delimiter_directive {
            diagnostics.push(Diagnostic::new(
                DiagKind::DelimiterFallbackSequential,
                "script contains a DELIMITER directive; the splitter used \
                 the tracked (sequential-equivalent) pass",
            ));
        }

        (
            Context {
                statements: analyzed,
                schema,
                workload,
                data,
                diagnostics,
                limits_epoch: limits.epoch(),
                dialect,
            },
            stats,
        )
    }
}

/// Decide the front-end worker count for this build.
fn plan_threads(opts: &FrontendOptions, uniques: usize) -> usize {
    if !cfg!(feature = "parallel") || !opts.parallel || uniques < 2 {
        return 1;
    }
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    opts.threads.unwrap_or(hw).clamp(1, uniques)
}

/// Apply `f` to every entry, across `threads` scoped workers over
/// contiguous chunks (deterministic: each worker writes only its own
/// slots).
#[cfg(feature = "parallel")]
fn for_each_entry<F>(entries: &mut [UniqueEntry], threads: usize, f: F)
where
    F: Fn(&mut UniqueEntry) + Sync,
{
    if threads <= 1 || entries.len() < 2 {
        entries.iter_mut().for_each(f);
        return;
    }
    let chunk = entries.len().div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        for part in entries.chunks_mut(chunk) {
            s.spawn(move || part.iter_mut().for_each(f));
        }
    });
}

/// Sequential stand-in when the `parallel` feature is disabled
/// (`plan_threads` never returns > 1 in that configuration).
#[cfg(not(feature = "parallel"))]
fn for_each_entry<F>(entries: &mut [UniqueEntry], _threads: usize, f: F)
where
    F: Fn(&mut UniqueEntry) + Sync,
{
    entries.iter_mut().for_each(f);
}

/// Render a minidb table schema as `CREATE TABLE` DDL so the generic
/// catalog code can ingest it.
pub(crate) fn synthesize_ddl(table: &sqlcheck_minidb::table::Table) -> String {
    use sqlcheck_minidb::value::DataType as DT;
    let mut cols: Vec<String> = table
        .schema
        .columns
        .iter()
        .map(|c| {
            let ty = match c.dtype {
                DT::Int => "INTEGER",
                DT::Float => "FLOAT",
                DT::Text => "TEXT",
                DT::Bool => "BOOLEAN",
                DT::Timestamp => {
                    if c.with_timezone {
                        "TIMESTAMPTZ"
                    } else {
                        "TIMESTAMP"
                    }
                }
            };
            let nn = if c.not_null { " NOT NULL" } else { "" };
            format!("{} {}{}", c.name, ty, nn)
        })
        .collect();
    if !table.schema.primary_key.is_empty() {
        cols.push(format!("PRIMARY KEY ({})", table.schema.primary_key.join(", ")));
    }
    for fk in &table.schema.foreign_keys {
        cols.push(format!(
            "FOREIGN KEY ({}) REFERENCES {} ({})",
            fk.columns.join(", "),
            fk.ref_table,
            fk.ref_columns.join(", ")
        ));
    }
    format!("CREATE TABLE {} ({})", table.schema.name, cols.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlcheck_minidb::prelude::*;

    #[test]
    fn builds_query_and_schema_context() {
        let ctx = ContextBuilder::new()
            .add_script(
                "CREATE TABLE t (a INT PRIMARY KEY, b INT);\
                 SELECT * FROM t WHERE a = 1;",
            )
            .build();
        assert_eq!(ctx.len(), 2);
        assert!(ctx.schema.table("t").is_some());
        assert_eq!(ctx.workload.usage("t", "a").unwrap().eq_predicates, 1);
        assert!(!ctx.has_data());
    }

    #[test]
    fn database_schema_merged_into_catalog() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("Users")
                .column(sqlcheck_minidb::schema::Column::new("User_ID", DataType::Text).not_null())
                .column(sqlcheck_minidb::schema::Column::new("Name", DataType::Text))
                .primary_key(&["User_ID"]),
        )
        .unwrap();
        db.insert("Users", vec![Value::text("U1"), Value::text("N")]).unwrap();

        let ctx = ContextBuilder::new()
            .add_script("SELECT * FROM Users WHERE Name = 'N'")
            .with_database(db, DataAnalysisConfig::default())
            .build();
        let t = ctx.schema.table("users").expect("table from db visible in catalog");
        assert!(t.has_primary_key());
        assert!(ctx.has_data());
        assert_eq!(ctx.data.as_ref().unwrap().table("users").unwrap().row_count, 1);
    }

    #[test]
    fn empty_context() {
        let ctx = ContextBuilder::new().build();
        assert!(ctx.is_empty());
        assert_eq!(ctx.schema.table_count(), 0);
    }

    #[test]
    fn refresh_data_tracks_schema_and_data_evolution() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("a")
                .column(sqlcheck_minidb::schema::Column::new("x", DataType::Int).not_null())
                .primary_key(&["x"]),
        )
        .unwrap();
        db.insert("a", vec![Value::Int(1)]).unwrap();
        let cfg = DataAnalysisConfig::default();
        let mut ctx = ContextBuilder::new().with_database(db.clone(), cfg.clone()).build();
        assert_eq!(ctx.data.as_ref().unwrap().table("a").unwrap().row_count, 1);

        // The database evolves: a new table appears, rows accrete.
        db.create_table(
            TableSchema::new("b")
                .column(sqlcheck_minidb::schema::Column::new("y", DataType::Int).not_null())
                .primary_key(&["y"]),
        )
        .unwrap();
        db.insert("a", vec![Value::Int(2)]).unwrap();
        // Stale until refreshed.
        assert!(ctx.data.as_ref().unwrap().table("b").is_none());
        ctx.refresh_data(&db, &cfg);
        assert_eq!(ctx.data.as_ref().unwrap().table("a").unwrap().row_count, 2);
        assert!(ctx.data.as_ref().unwrap().table("b").is_some());
        assert!(ctx.schema.table("b").is_some(), "schema catalog follows");
    }
}
