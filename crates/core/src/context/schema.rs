//! Schema catalog inferred from DDL statements.
//!
//! "If the database is not available, the ContextBuilder leverages the DDL
//! statements to construct the context" (§4.1). This module is that DDL
//! path: it folds `CREATE TABLE` / `CREATE INDEX` / `ALTER TABLE` /
//! `DROP` statements into a queryable catalog.

use sqlcheck_parser::ast::{
    AlterAction, ColumnConstraint, CreateIndex, CreateTable, Statement, TableConstraintKind,
    TypeName,
};
use sqlcheck_parser::IStr;
use std::collections::BTreeMap;

/// A column as known to the catalog.
#[derive(Debug, Clone)]
pub struct ColumnInfo {
    /// Column name.
    pub name: IStr,
    /// Declared type, if present.
    pub type_name: Option<TypeName>,
    /// NOT NULL declared.
    pub not_null: bool,
}

/// A CHECK constraint as known to the catalog.
#[derive(Debug, Clone)]
pub struct CheckInfo {
    /// Constraint name, when given.
    pub name: Option<IStr>,
    /// Raw check expression text.
    pub expr_text: String,
    /// `col IN (...)` shape, when recognised: `(column, values)`.
    pub in_list: Option<(IStr, Vec<IStr>)>,
}

/// A foreign key as known to the catalog.
#[derive(Debug, Clone)]
pub struct FkInfo {
    /// Referencing columns.
    pub columns: Vec<IStr>,
    /// Referenced table.
    pub ref_table: IStr,
    /// Referenced columns (may be empty, meaning the target PK).
    pub ref_columns: Vec<IStr>,
}

/// A table as known to the catalog.
#[derive(Debug, Clone, Default)]
pub struct TableInfo {
    /// Declared name (original case).
    pub name: IStr,
    /// Columns in declaration order.
    pub columns: Vec<ColumnInfo>,
    /// Primary key columns.
    pub primary_key: Vec<IStr>,
    /// Foreign keys.
    pub foreign_keys: Vec<FkInfo>,
    /// CHECK constraints.
    pub checks: Vec<CheckInfo>,
}

impl TableInfo {
    /// Look up a column (case-insensitive).
    pub fn column(&self, name: &str) -> Option<&ColumnInfo> {
        self.columns.iter().find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// True when the table declares any PK.
    pub fn has_primary_key(&self) -> bool {
        !self.primary_key.is_empty()
    }

    /// Columns with ENUM types or CHECK-IN lists — the Enumerated Types AP
    /// surface.
    pub fn enum_like_columns(&self) -> Vec<IStr> {
        let mut out = Vec::new();
        for c in &self.columns {
            if c.type_name.as_ref().map(|t| t.name == "ENUM").unwrap_or(false) {
                out.push(c.name.clone());
            }
        }
        for ch in &self.checks {
            if let Some((col, _)) = &ch.in_list {
                if !out.iter().any(|c| c.eq_ignore_ascii_case(col)) {
                    out.push(col.clone());
                }
            }
        }
        out
    }

    /// Foreign keys that reference this same table (Adjacency List AP).
    pub fn self_references(&self) -> Vec<&FkInfo> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.ref_table.eq_ignore_ascii_case(&self.name))
            .collect()
    }
}

/// An index as known to the catalog.
#[derive(Debug, Clone)]
pub struct IndexInfo {
    /// Index name.
    pub name: IStr,
    /// Indexed table.
    pub table: IStr,
    /// Indexed columns, in order.
    pub columns: Vec<IStr>,
    /// Unique index.
    pub unique: bool,
}

/// Content digests of a catalog at three granularities, used by the
/// incremental detection cache to decide what a schema edit invalidates.
///
/// * `tables` — one digest per table covering its full definition plus
///   every index on it (the coarse granularity PR 3 introduced);
/// * `cores` — per table, the **table-level** facts only: existence,
///   primary key, foreign keys, CHECK constraints. Adding a column or an
///   index leaves the core unchanged;
/// * `columns` — one digest per `(table, column)` (both lowercased)
///   covering the column's definition and every index that mentions it.
///
/// A cached result that recorded *column-granular* reads stays valid as
/// long as the cores of the tables it touched and the digests of the
/// exact columns it read are unchanged — a DDL edit to an untouched
/// column evicts nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaVersions {
    /// Whole-table digests (lowercased table name → digest).
    pub tables: BTreeMap<String, u64>,
    /// Table-core digests (existence + PK + FKs + CHECKs).
    pub cores: BTreeMap<String, u64>,
    /// Per-column digests (`(table, column)` lowercased → digest).
    pub columns: BTreeMap<(String, String), u64>,
}

/// The schema catalog.
#[derive(Debug, Clone, Default)]
pub struct SchemaCatalog {
    tables: BTreeMap<String, TableInfo>,
    /// All known secondary indexes.
    pub indexes: Vec<IndexInfo>,
}

impl SchemaCatalog {
    /// Build a catalog by folding DDL statements. Non-DDL statements are
    /// ignored.
    pub fn from_statements<'a>(stmts: impl IntoIterator<Item = &'a Statement>) -> Self {
        let mut cat = SchemaCatalog::default();
        for s in stmts {
            cat.apply(s);
        }
        cat
    }

    /// Apply one statement to the catalog.
    pub fn apply(&mut self, stmt: &Statement) {
        match stmt {
            Statement::CreateTable(ct) => self.apply_create_table(ct),
            Statement::CreateIndex(ci) => self.apply_create_index(ci),
            Statement::AlterTable(at) => {
                let key = at.table.name().to_ascii_lowercase();
                let entry = self.tables.entry(key).or_insert_with(|| TableInfo {
                    name: at.table.name().into(),
                    ..Default::default()
                });
                match &at.action {
                    AlterAction::AddColumn(cd) => {
                        entry.columns.push(column_info(cd));
                        fold_column_constraints(entry, cd);
                    }
                    AlterAction::DropColumn(name) => {
                        entry.columns.retain(|c| !c.name.eq_ignore_ascii_case(name));
                    }
                    AlterAction::AddConstraint(tc) => match &tc.kind {
                        TableConstraintKind::PrimaryKey(cols) => {
                            entry.primary_key = cols.clone();
                        }
                        TableConstraintKind::ForeignKey { columns, reference } => {
                            entry.foreign_keys.push(FkInfo {
                                columns: columns.clone(),
                                ref_table: reference.table.name().into(),
                                ref_columns: reference.columns.clone(),
                            });
                        }
                        TableConstraintKind::Check(ch) => {
                            entry.checks.push(CheckInfo {
                                name: tc.name.clone(),
                                expr_text: ch.expr_text.clone(),
                                in_list: ch.in_list.clone(),
                            });
                        }
                        _ => {}
                    },
                    AlterAction::DropConstraint(name) => {
                        entry.checks.retain(|c| {
                            c.name.as_deref().map(|n| !n.eq_ignore_ascii_case(name)).unwrap_or(true)
                        });
                    }
                    AlterAction::Other(_) => {}
                }
            }
            Statement::Drop(d) => match d.object_kind.as_str() {
                "TABLE" => {
                    self.tables.remove(&d.name.name().to_ascii_lowercase());
                }
                "INDEX" => {
                    self.indexes.retain(|i| !i.name.eq_ignore_ascii_case(d.name.name()));
                }
                _ => {}
            },
            _ => {}
        }
    }

    fn apply_create_table(&mut self, ct: &CreateTable) {
        let mut info = TableInfo {
            name: ct.name.name().into(),
            columns: ct.columns.iter().map(column_info).collect(),
            primary_key: ct.primary_key_columns(),
            foreign_keys: ct
                .foreign_keys()
                .into_iter()
                .map(|(cols, r)| FkInfo {
                    columns: cols,
                    ref_table: r.table.name().into(),
                    ref_columns: r.columns,
                })
                .collect(),
            checks: Vec::new(),
        };
        for col in &ct.columns {
            for c in &col.constraints {
                if let ColumnConstraint::Check(ch) = c {
                    info.checks.push(CheckInfo {
                        name: None,
                        expr_text: ch.expr_text.clone(),
                        in_list: ch
                            .in_list
                            .clone()
                            .or_else(|| Some((col.name.clone(), Vec::new())).filter(|_| false)),
                    });
                }
            }
        }
        for tc in &ct.constraints {
            if let TableConstraintKind::Check(ch) = &tc.kind {
                info.checks.push(CheckInfo {
                    name: tc.name.clone(),
                    expr_text: ch.expr_text.clone(),
                    in_list: ch.in_list.clone(),
                });
            }
        }
        self.tables.insert(ct.name.name().to_ascii_lowercase(), info);
    }

    fn apply_create_index(&mut self, ci: &CreateIndex) {
        self.indexes.push(IndexInfo {
            name: ci.name.clone(),
            table: ci.table.name().into(),
            columns: ci.columns.clone(),
            unique: ci.unique,
        });
    }

    /// Look up a table (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&TableInfo> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// All tables.
    pub fn tables(&self) -> impl Iterator<Item = &TableInfo> {
        self.tables.values()
    }

    /// Number of known tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Indexes on a given table.
    pub fn indexes_on(&self, table: &str) -> Vec<&IndexInfo> {
        self.indexes.iter().filter(|i| i.table.eq_ignore_ascii_case(table)).collect()
    }

    /// Whether any index on `table` has `column` as its leading column.
    pub fn has_index_on(&self, table: &str, column: &str) -> bool {
        self.indexes_on(table).iter().any(|i| {
            i.columns.first().map(|c| c.eq_ignore_ascii_case(column)).unwrap_or(false)
        }) || self
            .table(table)
            .map(|t| {
                t.primary_key.first().map(|c| c.eq_ignore_ascii_case(column)).unwrap_or(false)
            })
            .unwrap_or(false)
    }

    /// Per-table content digests: one `u64` per table name (lowercased),
    /// covering the table's definition **and** every index declared on it
    /// (intra-query rules consult both). Indexes on tables the catalog
    /// does not otherwise know still get a digest under their table name,
    /// so a statement referencing such a table is invalidated when the
    /// index set changes. Digests are pure functions of catalog content:
    /// two catalogs folded from the same DDL produce identical maps, so a
    /// no-op schema reload is recognisable as such. Used by the
    /// incremental detection cache for per-table invalidation.
    pub fn table_digests(&self) -> BTreeMap<String, u64> {
        use sqlcheck_parser::fingerprint::fnv1a;
        use std::fmt::Write as _;
        let mut encoded: BTreeMap<String, String> = BTreeMap::new();
        for (key, info) in &self.tables {
            let _ = write!(encoded.entry(key.clone()).or_default(), "{info:?}");
        }
        for idx in &self.indexes {
            let key = idx.table.to_ascii_lowercase();
            let _ = write!(encoded.entry(key).or_default(), "|{idx:?}");
        }
        encoded.into_iter().map(|(k, s)| (k, fnv1a(s.as_bytes()))).collect()
    }

    /// Column-granular schema versions: the whole-table digests of
    /// [`SchemaCatalog::table_digests`] plus two finer-grained maps that
    /// let the incremental cache invalidate per **column** instead of per
    /// table. Like the table digests, every entry is a pure function of
    /// catalog content.
    pub fn versions(&self) -> SchemaVersions {
        use sqlcheck_parser::fingerprint::fnv1a;
        use std::fmt::Write as _;
        let mut cores: BTreeMap<String, String> = BTreeMap::new();
        let mut columns: BTreeMap<(String, String), String> = BTreeMap::new();
        for (key, info) in &self.tables {
            // Core: everything about the table that is not attributable to
            // a single column — existence, PK, FKs, CHECKs. Deliberately
            // excludes the column list and the index set, so ADD COLUMN /
            // CREATE INDEX leave the core untouched.
            let core = cores.entry(key.clone()).or_default();
            let _ = write!(
                core,
                "{:?}|{:?}|{:?}|{:?}",
                info.name, info.primary_key, info.foreign_keys, info.checks
            );
            for c in &info.columns {
                let _ = write!(
                    columns
                        .entry((key.clone(), c.name.to_ascii_lowercase()))
                        .or_default(),
                    "{c:?}"
                );
            }
        }
        // An index folds into the digest of every column it mentions (and
        // creates the column entry when the catalog knows the table only
        // through the index), so CREATE/DROP INDEX invalidates exactly the
        // entries that read an indexed column.
        for idx in &self.indexes {
            let key = idx.table.to_ascii_lowercase();
            for c in &idx.columns {
                let _ = write!(
                    columns.entry((key.clone(), c.to_ascii_lowercase())).or_default(),
                    "|{idx:?}"
                );
            }
        }
        SchemaVersions {
            tables: self.table_digests(),
            cores: cores.into_iter().map(|(k, s)| (k, fnv1a(s.as_bytes()))).collect(),
            columns: columns
                .into_iter()
                .map(|(k, s)| (k, fnv1a(s.as_bytes())))
                .collect(),
        }
    }

    /// Does a declared FK connect `(t1, c1)` to `(t2, c2)` in either
    /// direction?
    pub fn fk_between(&self, t1: &str, c1: &str, t2: &str, c2: &str) -> bool {
        let covered = |from: &str, from_col: &str, to: &str, to_col: &str| {
            self.table(from)
                .map(|t| {
                    t.foreign_keys.iter().any(|fk| {
                        fk.ref_table.eq_ignore_ascii_case(to)
                            && fk.columns.iter().any(|c| c.eq_ignore_ascii_case(from_col))
                            && (fk.ref_columns.is_empty()
                                || fk
                                    .ref_columns
                                    .iter()
                                    .any(|c| c.eq_ignore_ascii_case(to_col)))
                    })
                })
                .unwrap_or(false)
        };
        covered(t1, c1, t2, c2) || covered(t2, c2, t1, c1)
    }
}

fn column_info(cd: &sqlcheck_parser::ast::ColumnDef) -> ColumnInfo {
    ColumnInfo {
        name: cd.name.clone(),
        type_name: cd.data_type.clone(),
        not_null: cd
            .constraints
            .iter()
            .any(|c| matches!(c, ColumnConstraint::NotNull | ColumnConstraint::PrimaryKey)),
    }
}

fn fold_column_constraints(entry: &mut TableInfo, cd: &sqlcheck_parser::ast::ColumnDef) {
    for c in &cd.constraints {
        match c {
            ColumnConstraint::PrimaryKey => entry.primary_key = vec![cd.name.clone()],
            ColumnConstraint::References(r) => entry.foreign_keys.push(FkInfo {
                columns: vec![cd.name.clone()],
                ref_table: r.table.name().into(),
                ref_columns: r.columns.clone(),
            }),
            ColumnConstraint::Check(ch) => entry.checks.push(CheckInfo {
                name: None,
                expr_text: ch.expr_text.clone(),
                in_list: ch.in_list.clone(),
            }),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlcheck_parser::parse;

    fn catalog(sql: &str) -> SchemaCatalog {
        let parsed = parse(sql);
        SchemaCatalog::from_statements(parsed.iter().map(|p| &p.stmt))
    }

    #[test]
    fn create_table_registers() {
        let c = catalog(
            "CREATE TABLE Tenant (Tenant_ID INTEGER PRIMARY KEY, Zone_ID VARCHAR(30) NOT NULL);",
        );
        let t = c.table("tenant").unwrap();
        assert_eq!(t.columns.len(), 2);
        assert!(t.has_primary_key());
        assert!(t.column("zone_id").unwrap().not_null);
    }

    #[test]
    fn alter_add_check_and_drop() {
        let c = catalog(
            "CREATE TABLE u (role VARCHAR(5));\
             ALTER TABLE u ADD CONSTRAINT rc CHECK (role IN ('R1','R2'));",
        );
        let t = c.table("u").unwrap();
        assert_eq!(t.checks.len(), 1);
        assert_eq!(t.enum_like_columns(), vec!["role"]);
        let c2 = catalog(
            "CREATE TABLE u (role VARCHAR(5));\
             ALTER TABLE u ADD CONSTRAINT rc CHECK (role IN ('R1','R2'));\
             ALTER TABLE u DROP CONSTRAINT rc;",
        );
        assert!(c2.table("u").unwrap().checks.is_empty());
    }

    #[test]
    fn index_tracking() {
        let c = catalog(
            "CREATE TABLE t (a INT, b INT);\
             CREATE INDEX ia ON t (a);\
             CREATE INDEX iab ON t (a, b);\
             DROP INDEX ia;",
        );
        assert_eq!(c.indexes_on("t").len(), 1);
        assert!(c.has_index_on("t", "a"));
        assert!(!c.has_index_on("t", "b"), "b is not a leading column");
    }

    #[test]
    fn pk_counts_as_index() {
        let c = catalog("CREATE TABLE t (id INT PRIMARY KEY, x INT)");
        assert!(c.has_index_on("t", "id"));
    }

    #[test]
    fn fk_between_both_directions() {
        let c = catalog(
            "CREATE TABLE a (id INT PRIMARY KEY);\
             CREATE TABLE b (a_id INT REFERENCES a(id));",
        );
        assert!(c.fk_between("b", "a_id", "a", "id"));
        assert!(c.fk_between("a", "id", "b", "a_id"));
        assert!(!c.fk_between("a", "id", "b", "other"));
    }

    #[test]
    fn self_reference_detected() {
        let c = catalog(
            "CREATE TABLE emp (id INT PRIMARY KEY, mgr_id INT REFERENCES emp(id))",
        );
        assert_eq!(c.table("emp").unwrap().self_references().len(), 1);
    }

    #[test]
    fn drop_table_removes() {
        let c = catalog("CREATE TABLE t (a INT); DROP TABLE t;");
        assert!(c.table("t").is_none());
    }

    #[test]
    fn table_digests_are_content_stable_and_table_local() {
        let ddl = "CREATE TABLE a (id INT PRIMARY KEY);\
                   CREATE TABLE b (x INT);\
                   CREATE INDEX ib ON b (x);";
        let d1 = catalog(ddl).table_digests();
        let d2 = catalog(ddl).table_digests();
        assert_eq!(d1, d2, "same DDL → identical digests (no-op reload stays warm)");
        assert_eq!(d1.len(), 2);
        // Editing one table changes only that table's digest.
        let edited = catalog(
            "CREATE TABLE a (id INT PRIMARY KEY, extra TEXT);\
             CREATE TABLE b (x INT);\
             CREATE INDEX ib ON b (x);",
        )
        .table_digests();
        assert_ne!(d1["a"], edited["a"]);
        assert_eq!(d1["b"], edited["b"]);
        // An index change alone re-versions its table.
        let dropped = catalog("CREATE TABLE a (id INT PRIMARY KEY); CREATE TABLE b (x INT);")
            .table_digests();
        assert_ne!(d1["b"], dropped["b"]);
    }

    #[test]
    fn column_versions_isolate_add_column() {
        let base = "CREATE TABLE t (a INT, b INT);";
        let v1 = catalog(base).versions();
        let v2 = catalog("CREATE TABLE t (a INT, b INT); ALTER TABLE t ADD COLUMN c INT;")
            .versions();
        // Whole-table digest changes, core and untouched columns do not.
        assert_ne!(v1.tables["t"], v2.tables["t"]);
        assert_eq!(v1.cores["t"], v2.cores["t"]);
        let key = |c: &str| ("t".to_string(), c.to_string());
        assert_eq!(v1.columns[&key("a")], v2.columns[&key("a")]);
        assert_eq!(v1.columns[&key("b")], v2.columns[&key("b")]);
        assert!(!v1.columns.contains_key(&key("c")));
        assert!(v2.columns.contains_key(&key("c")));
    }

    #[test]
    fn column_versions_fold_indexes_per_column() {
        let v1 = catalog("CREATE TABLE t (a INT, b INT);").versions();
        let v2 = catalog("CREATE TABLE t (a INT, b INT); CREATE INDEX ia ON t (a);")
            .versions();
        let key = |c: &str| ("t".to_string(), c.to_string());
        assert_ne!(v1.columns[&key("a")], v2.columns[&key("a")]);
        assert_eq!(v1.columns[&key("b")], v2.columns[&key("b")]);
        assert_eq!(v1.cores["t"], v2.cores["t"], "index change leaves the core");
    }

    #[test]
    fn core_versions_capture_pk_and_checks() {
        let v1 = catalog("CREATE TABLE t (a INT, b INT);").versions();
        let pk = catalog("CREATE TABLE t (a INT, b INT); \
                          ALTER TABLE t ADD CONSTRAINT p PRIMARY KEY (a);")
            .versions();
        assert_ne!(v1.cores["t"], pk.cores["t"]);
        let ck = catalog("CREATE TABLE t (a INT, b INT); \
                          ALTER TABLE t ADD CONSTRAINT c CHECK (a IN (1, 2));")
            .versions();
        assert_ne!(v1.cores["t"], ck.cores["t"]);
    }

    #[test]
    fn versions_are_content_stable() {
        let ddl = "CREATE TABLE a (id INT PRIMARY KEY); CREATE INDEX i ON a (id);";
        assert_eq!(catalog(ddl).versions(), catalog(ddl).versions());
    }

    #[test]
    fn enum_type_column_detected() {
        let c = catalog("CREATE TABLE u (role ENUM('a','b'))");
        assert_eq!(c.table("u").unwrap().enum_like_columns(), vec!["role"]);
    }
}
