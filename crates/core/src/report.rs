//! Detection reports.

use crate::anti_pattern::AntiPatternKind;
use std::fmt;
use std::sync::Arc;

pub use sqlcheck_parser::token::Span;

/// Where a detection is anchored.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Locus {
    /// A statement, by index in the analysed script.
    Statement {
        /// Zero-based statement index.
        index: usize,
    },
    /// A table known from the schema or database.
    Table {
        /// Table name.
        table: String,
    },
    /// A column of a table.
    Column {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// An index.
    Index {
        /// Index name.
        index: String,
    },
    /// The application as a whole (cross-cutting detections).
    Application,
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locus::Statement { index } => write!(f, "statement #{index}"),
            Locus::Table { table } => write!(f, "table {table}"),
            Locus::Column { table, column } => write!(f, "column {table}.{column}"),
            Locus::Index { index } => write!(f, "index {index}"),
            Locus::Application => f.write_str("application"),
        }
    }
}

/// One detected anti-pattern occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The anti-pattern kind.
    pub kind: AntiPatternKind,
    /// Where it was found.
    pub locus: Locus,
    /// Human-readable explanation with concrete evidence. Shared
    /// (`Arc<str>`) so batch detection can fan one analysis result out to
    /// thousands of duplicate statements without re-allocating the text.
    pub message: Arc<str>,
    /// Which analysis produced it (used for the intra/inter/data ablation).
    pub source: DetectionSource,
    /// Source byte range this detection anchors to, when the locus is a
    /// statement from an analysed script: the whole statement, or — for
    /// a finding inside a compound statement's `BEGIN…END` body — the
    /// body sub-statement. Spans are **per occurrence**: duplicate
    /// statement texts share one parse tree but each detection points at
    /// its own location in the source. (Internally, intra-query body
    /// detections hold statement-relative spans until span attachment
    /// rebases them; reported spans are always absolute.)
    pub span: Option<Span>,
}

/// The analysis phase that produced a detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionSource {
    /// Intra-query rule (single statement).
    IntraQuery,
    /// Inter-query rule (uses the application context).
    InterQuery,
    /// Data-analysis rule (uses the database).
    DataAnalysis,
}

impl Detection {
    /// The statement index, when the locus is a statement.
    pub fn statement_index(&self) -> Option<usize> {
        match self.locus {
            Locus::Statement { index } => Some(index),
            _ => None,
        }
    }
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} @ {}: {}", self.kind.category(), self.kind, self.locus, self.message)
    }
}

/// A full detection report over a script / application.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All detections, in rule application order (ranking reorders them).
    pub detections: Vec<Detection>,
}

impl Report {
    /// Count detections of a kind.
    pub fn count(&self, kind: AntiPatternKind) -> usize {
        self.detections.iter().filter(|d| d.kind == kind).count()
    }

    /// Detections grouped by kind, in catalog order.
    pub fn by_kind(&self) -> Vec<(AntiPatternKind, usize)> {
        AntiPatternKind::ALL
            .iter()
            .map(|k| (*k, self.count(*k)))
            .filter(|(_, n)| *n > 0)
            .collect()
    }

    /// Distinct kinds present.
    pub fn kinds(&self) -> Vec<AntiPatternKind> {
        self.by_kind().into_iter().map(|(k, _)| k).collect()
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.detections.extend(other.detections);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(kind: AntiPatternKind) -> Detection {
        Detection {
            kind,
            locus: Locus::Statement { index: 0 },
            message: "m".into(),
            source: DetectionSource::IntraQuery,
            span: None,
        }
    }

    #[test]
    fn count_and_group() {
        let mut r = Report::default();
        r.detections.push(det(AntiPatternKind::ColumnWildcard));
        r.detections.push(det(AntiPatternKind::ColumnWildcard));
        r.detections.push(det(AntiPatternKind::NoPrimaryKey));
        assert_eq!(r.count(AntiPatternKind::ColumnWildcard), 2);
        let by = r.by_kind();
        assert_eq!(by.len(), 2);
        assert!(by.contains(&(AntiPatternKind::ColumnWildcard, 2)));
    }

    #[test]
    fn display_contains_key_fields() {
        let d = det(AntiPatternKind::NoPrimaryKey);
        let s = d.to_string();
        assert!(s.contains("No Primary Key"));
        assert!(s.contains("statement #0"));
        assert!(s.contains("Logical Design"));
    }

    #[test]
    fn merge_reports() {
        let mut a = Report::default();
        a.detections.push(det(AntiPatternKind::GodTable));
        let mut b = Report::default();
        b.detections.push(det(AntiPatternKind::CloneTable));
        a.merge(b);
        assert_eq!(a.detections.len(), 2);
    }
}
