//! Context-tailored textual fixes — the fallback when no non-ambiguous
//! transformation exists (Algorithm 4, line 12).

use crate::anti_pattern::AntiPatternKind;
use crate::context::Context;
use crate::report::{Detection, Locus};

/// Produce the textual fix for a detection, weaving in the locus so the
/// advice is tailored to the application rather than generic.
pub fn advice(d: &Detection, ctx: &Context) -> String {
    use AntiPatternKind::*;
    let site = site_name(d);
    match d.kind {
        MultiValuedAttribute => format!(
            "Replace the delimiter-separated list in {site} with an intersection table \
             carrying one row per (owner, member) pair; add foreign keys to both referenced \
             tables and a composite primary key."
        ),
        NoPrimaryKey => format!(
            "Declare a PRIMARY KEY on {site}. {}",
            pk_candidate(d, ctx)
                .map(|c| format!("Column '{c}' looks like a natural key."))
                .unwrap_or_else(|| "Add a natural key or a surrogate key column.".into())
        ),
        NoForeignKey => format!(
            "Declare a FOREIGN KEY for {site} so the DBMS enforces referential integrity \
             instead of application code."
        ),
        GenericPrimaryKey => format!(
            "Rename the generic 'id' key in {site} to a descriptive name (e.g. <table>_id) \
             so joins read unambiguously and USING clauses become possible."
        ),
        DataInMetadata => format!(
            "Move the values encoded in {site}'s column names into rows of a child table \
             (one row per value) instead of numbered columns."
        ),
        AdjacencyList => format!(
            "{site} models a hierarchy as an adjacency list; consider a path enumeration, \
             nested set, or closure table design — or recursive CTEs where the DBMS \
             supports them."
        ),
        GodTable => format!(
            "Split {site} into cohesive entities; move rarely-used or nullable column \
             groups into 1:1 satellite tables."
        ),
        RoundingErrors => format!(
            "Store fractional values in {site} as NUMERIC/DECIMAL with explicit precision \
             instead of binary FLOAT."
        ),
        EnumeratedTypes => format!(
            "Replace the fixed value set on {site} with a lookup table and a foreign key; \
             new values then require an INSERT instead of an ALTER."
        ),
        ExternalDataStorage => format!(
            "{site} stores file paths; store the content in the database (BLOB) or enforce \
             path integrity in one place — orphaned files violate integrity silently."
        ),
        IndexOveruse => format!(
            "Drop or consolidate {site}: every write pays for index maintenance. Prefer one \
             composite index serving several queries over many single-column indexes."
        ),
        IndexUnderuse => format!(
            "Create an index covering the predicate on {site} — the workload filters on it \
             repeatedly without index support."
        ),
        CloneTable => format!(
            "Merge the cloned tables ({site}) into one table with a discriminator column; \
             use partitioning if volume demands it."
        ),
        ColumnWildcard => format!(
            "List the needed columns explicitly in {site}; SELECT * couples the application \
             to the physical column order and fetches unused data."
        ),
        ConcatenateNulls => format!(
            "Wrap nullable operands in COALESCE(col, '') in {site}, or use CONCAT_WS — \
             '||' yields NULL if any operand is NULL."
        ),
        OrderingByRand => format!(
            "Avoid ORDER BY RAND() in {site}: pick a random key instead, e.g. \
             `WHERE key >= <random value> ORDER BY key LIMIT 1`, or sample row ids in the \
             application."
        ),
        PatternMatching => format!(
            "The pattern predicate in {site} defeats indexing. Use a prefix pattern, a \
             full-text index, or a dedicated search engine for substring/regex search."
        ),
        ImplicitColumns => format!(
            "Spell out the column list in {site}; implicit columns silently corrupt data \
             when the schema evolves."
        ),
        DistinctJoin => format!(
            "In {site}, DISTINCT hides duplicates created by the join; restructure as a \
             semi-join (EXISTS / IN) that never produces them."
        ),
        TooManyJoins => format!(
            "{site} exceeds the join threshold; consider materialising a pre-joined view, \
             denormalising hot attributes, or splitting the query."
        ),
        ReadablePassword => format!(
            "Never store or compare plain-text passwords ({site}); store a salted adaptive \
             hash (bcrypt/argon2) and compare digests."
        ),
        MissingTimezone => format!(
            "Declare {site} WITH TIME ZONE (or store UTC and convert at the edge); naive \
             timestamps corrupt cross-timezone data."
        ),
        IncorrectDataType => format!(
            "{site} stores numeric data as text; migrate to a numeric type to regain \
             comparison semantics, index order, and storage density."
        ),
        DenormalizedTable => format!(
            "Extract the repeated values of {site} into a lookup table referenced by id."
        ),
        InformationDuplication => format!(
            "{site} stores derivable data; compute it at query time (or in a view/generated \
             column) so the two copies can never disagree."
        ),
        RedundantColumn => format!(
            "{site} carries no information (constant or all NULL); drop it."
        ),
        NoDomainConstraint => format!(
            "Add a CHECK constraint to {site} enforcing the bounded domain the data already \
             follows."
        ),
    }
}

fn site_name(d: &Detection) -> String {
    match &d.locus {
        Locus::Statement { index } => format!("statement #{index}"),
        other => other.to_string(),
    }
}

/// For No Primary Key advice: a unique-looking id column, if one exists.
fn pk_candidate(d: &Detection, ctx: &Context) -> Option<String> {
    let table = match &d.locus {
        Locus::Table { table } => table.clone(),
        Locus::Statement { index } => {
            ctx.statements.get(*index)?.ann.tables.first()?.to_string()
        }
        _ => return None,
    };
    let info = ctx.schema.table(&table)?;
    info.columns
        .iter()
        .find(|c| {
            let n = c.name.to_ascii_lowercase();
            n.ends_with("_id") || n == "id" || n.ends_with("_key")
        })
        .map(|c| c.name.to_string())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::context::ContextBuilder;
    use crate::detect::Detector;

    #[test]
    fn advice_is_site_specific() {
        let ctx = ContextBuilder::new()
            .add_script("CREATE TABLE t (tenant_id INT, x INT)")
            .build();
        let report = Detector::default().detect(&ctx);
        let d = report
            .detections
            .iter()
            .find(|d| d.kind == AntiPatternKind::NoPrimaryKey)
            .unwrap();
        let a = advice(d, &ctx);
        assert!(a.contains("statement #0"));
        assert!(a.contains("tenant_id"), "candidate key surfaced: {a}");
    }

    #[test]
    fn every_kind_has_nonempty_advice() {
        let ctx = ContextBuilder::new().build();
        for kind in AntiPatternKind::ALL {
            let d = Detection {
                kind,
                locus: Locus::Application,
                message: "".into(),
                source: crate::report::DetectionSource::IntraQuery,
                span: None,
            };
            assert!(!advice(&d, &ctx).is_empty());
        }
    }
}
