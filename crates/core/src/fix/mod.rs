//! `ap-fix`: suggesting fixes for detected anti-patterns (§6, Algorithm 4).
//!
//! Each repair rule is a pair: a *detection* (done by `ap-detect`) and an
//! *action*. The action either produces a non-ambiguous transformation —
//! a rewritten statement or a set of new DDL statements, rendered through
//! the parser's `ToSql` — or falls back to a textual fix tailored to the
//! application's context, exactly as the paper prescribes for the cases
//! where the non-validating parse tree lacks the syntactic information to
//! rewrite safely.
//!
//! Fix generation must degrade, never abort: a malformed or unmodelled
//! AST yields "no structural fix" (falling back to textual advice), so
//! `unwrap()` is linted against throughout this module tree.

#![warn(clippy::unwrap_used)]

pub mod textual;
pub mod transforms;

use crate::context::Context;
use crate::report::Detection;

/// A suggested fix.
#[derive(Debug, Clone)]
pub enum Fix {
    /// The offending statement rewritten in place.
    Rewrite {
        /// The original statement text.
        original: String,
        /// The repaired statement.
        fixed: String,
    },
    /// A schema change: new/changed DDL plus every impacted query,
    /// rewritten (the paper's `GetImpactedQueries` closure).
    SchemaChange {
        /// DDL statements to execute, in order.
        statements: Vec<String>,
        /// `(statement index, rewritten SQL)` for impacted queries.
        impacted_queries: Vec<(usize, String)>,
    },
    /// A context-tailored textual fix the developer applies manually.
    Textual {
        /// The advice.
        advice: String,
    },
}

impl Fix {
    /// True when the fix is fully automatic (not textual).
    pub fn is_automatic(&self) -> bool {
        !matches!(self, Fix::Textual { .. })
    }
}

/// A detection paired with its suggested fix.
#[derive(Debug, Clone)]
pub struct SuggestedFix {
    /// The detection being fixed.
    pub detection: Detection,
    /// The suggestion.
    pub fix: Fix,
}

/// The repair engine.
#[derive(Debug, Clone, Default)]
pub struct FixEngine;

impl FixEngine {
    /// Suggest a fix for one detection.
    pub fn fix(&self, detection: &Detection, ctx: &Context) -> Fix {
        use crate::anti_pattern::AntiPatternKind::*;
        let transformed = match detection.kind {
            ImplicitColumns => transforms::implicit_columns(detection, ctx),
            ColumnWildcard => transforms::column_wildcard(detection, ctx),
            ConcatenateNulls => transforms::concatenate_nulls(detection, ctx),
            DistinctJoin => transforms::distinct_join(detection, ctx),
            EnumeratedTypes => transforms::enumerated_types(detection, ctx),
            MultiValuedAttribute => transforms::multi_valued_attribute(detection, ctx),
            NoForeignKey => transforms::no_foreign_key(detection, ctx),
            IndexUnderuse => transforms::index_underuse(detection, ctx),
            IndexOveruse => transforms::index_overuse(detection, ctx),
            RoundingErrors => transforms::rounding_errors(detection, ctx),
            _ => None,
        };
        transformed.unwrap_or_else(|| Fix::Textual {
            advice: textual::advice(detection, ctx),
        })
    }

    /// Suggest fixes for an ordered detection list (Algorithm 4's loop).
    pub fn fix_all(&self, detections: &[Detection], ctx: &Context) -> Vec<SuggestedFix> {
        detections
            .iter()
            .map(|d| SuggestedFix { detection: d.clone(), fix: self.fix(d, ctx) })
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::context::ContextBuilder;
    use crate::detect::Detector;

    #[test]
    fn every_detection_gets_some_fix() {
        let sql = "CREATE TABLE t (a INT, b FLOAT, tag1 TEXT, tag2 TEXT, password TEXT);\
                   INSERT INTO t VALUES (1, 2.0, 'x', 'y', 'secret');\
                   SELECT * FROM t ORDER BY RAND();";
        let ctx = ContextBuilder::new().add_script(sql).build();
        let report = Detector::default().detect(&ctx);
        assert!(!report.detections.is_empty());
        let fixes = FixEngine.fix_all(&report.detections, &ctx);
        assert_eq!(fixes.len(), report.detections.len());
        for f in &fixes {
            match &f.fix {
                Fix::Textual { advice } => assert!(!advice.is_empty()),
                Fix::Rewrite { fixed, .. } => assert!(!fixed.is_empty()),
                Fix::SchemaChange { statements, .. } => assert!(!statements.is_empty()),
            }
        }
    }
}
