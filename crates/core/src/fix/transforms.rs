//! Non-ambiguous query/schema transformations (§6.1).
//!
//! Each function returns `Some(Fix)` when the context carries enough
//! syntactic information to transform safely, `None` to fall back to a
//! textual fix. Rewrites go through the AST and are rendered with
//! [`ToSql`], matching the paper's "transforms the parse tree to a SQL
//! string" step.

use crate::context::Context;
use crate::fix::Fix;
use crate::report::{Detection, Locus};
use sqlcheck_parser::arena::{ExprArena, ExprId, ExprRange};
use sqlcheck_parser::ast::*;
use sqlcheck_parser::render::ToSql;
use sqlcheck_parser::IStr;

fn statement_at<'c>(d: &Detection, ctx: &'c Context) -> Option<&'c ParsedStatement> {
    d.statement_index().and_then(|i| ctx.statements.get(i)).map(|a| a.parsed.as_ref())
}

/// Implicit Columns (Example 2): add the explicit column list from the
/// schema. Requires the schema to know the table and the arities to match.
pub fn implicit_columns(d: &Detection, ctx: &Context) -> Option<Fix> {
    let parsed = statement_at(d, ctx)?;
    let Statement::Insert(ins) = &parsed.stmt else { return None };
    if !ins.columns.is_empty() {
        return None;
    }
    let table = ctx.schema.table(ins.table.name())?;
    let InsertSource::Values(rows) = &ins.source else { return None };
    let arity = rows.first()?.len();
    if table.columns.len() != arity {
        return None; // ambiguous — the paper falls back to a textual fix
    }
    let mut fixed = ins.clone();
    fixed.columns = table.columns.iter().map(|c| c.name.clone()).collect();
    Some(Fix::Rewrite { original: parsed.text(), fixed: fixed.to_sql(&parsed.arena) })
}

/// Column Wildcard: expand `*` to the explicit column list when every
/// table in scope is known to the schema.
pub fn column_wildcard(d: &Detection, ctx: &Context) -> Option<Fix> {
    let parsed = statement_at(d, ctx)?;
    let Statement::Select(sel) = &parsed.stmt else { return None };
    // New column-reference nodes go into a copy of the statement's arena
    // (existing ids stay valid — the arena is append-only).
    let mut arena = parsed.arena.clone();
    let mut fixed = sel.clone();
    let mut new_items = Vec::new();
    for item in &fixed.items {
        match item {
            SelectItem::Wildcard { qualifier } => {
                let expansions = expand_wildcard(sel, qualifier.as_deref(), ctx, &mut arena)?;
                new_items.extend(expansions);
            }
            other => new_items.push(other.clone()),
        }
    }
    fixed.items = new_items;
    Some(Fix::Rewrite { original: parsed.text(), fixed: fixed.to_sql(&arena) })
}

fn expand_wildcard(
    sel: &Select,
    qualifier: Option<&str>,
    ctx: &Context,
    arena: &mut ExprArena,
) -> Option<Vec<SelectItem>> {
    let tables: Vec<&TableRef> = match qualifier {
        Some(q) => sel
            .tables()
            .into_iter()
            .filter(|t| t.binding().eq_ignore_ascii_case(q))
            .collect(),
        None => sel.tables(),
    };
    if tables.is_empty() {
        return None;
    }
    let mut items = Vec::new();
    let multi = tables.len() > 1;
    for t in tables {
        if t.subquery.is_some() {
            return None;
        }
        let info = ctx.schema.table(t.name.name())?;
        if info.columns.is_empty() {
            return None;
        }
        for c in &info.columns {
            let expr = if multi || qualifier.is_some() {
                Expr::Ident(vec![t.binding().into(), c.name.clone()])
            } else {
                Expr::ident(c.name.clone())
            };
            items.push(SelectItem::Expr { expr: arena.alloc(expr), alias: None });
        }
    }
    Some(items)
}

/// Concatenate Nulls: wrap nullable identifier operands of `||` in
/// `COALESCE(x, '')`.
pub fn concatenate_nulls(d: &Detection, ctx: &Context) -> Option<Fix> {
    let parsed = statement_at(d, ctx)?;
    let Statement::Select(sel) = &parsed.stmt else { return None };
    let mut arena = parsed.arena.clone();
    let mut fixed = sel.clone();
    let mut changed = false;
    for item in &mut fixed.items {
        if let SelectItem::Expr { expr, .. } = item {
            *expr = rewrite_concat(&mut arena, *expr, &mut changed);
        }
    }
    if let Some(w) = fixed.where_clause.take() {
        fixed.where_clause = Some(rewrite_concat(&mut arena, w, &mut changed));
    }
    if !changed {
        return None;
    }
    Some(Fix::Rewrite { original: parsed.text(), fixed: fixed.to_sql(&arena) })
}

fn rewrite_concat(arena: &mut ExprArena, id: ExprId, changed: &mut bool) -> ExprId {
    match arena.node(id).clone() {
        Expr::Binary { left, op, right } if op == "||" => {
            let l = rewrite_concat(arena, left, changed);
            let l = coalesce_ident(arena, l, changed);
            let r = rewrite_concat(arena, right, changed);
            let r = coalesce_ident(arena, r, changed);
            arena.alloc(Expr::Binary { left: l, op, right: r })
        }
        Expr::Binary { left, op, right } => {
            let l = rewrite_concat(arena, left, changed);
            let r = rewrite_concat(arena, right, changed);
            arena.alloc(Expr::Binary { left: l, op, right: r })
        }
        Expr::Paren(inner) => {
            let i = rewrite_concat(arena, inner, changed);
            arena.alloc(Expr::Paren(i))
        }
        _ => id,
    }
}

fn coalesce_ident(arena: &mut ExprArena, id: ExprId, changed: &mut bool) -> ExprId {
    if let Expr::Ident(_) = arena.node(id) {
        *changed = true;
        // Argument lists are contiguous runs, so re-allocate the ident
        // next to its '' fallback.
        let ident = arena.node(id).clone();
        let args = arena.alloc_range([ident, Expr::StringLit(IStr::empty())]);
        arena.alloc(Expr::Function { name: "COALESCE".into(), args, distinct: false })
    } else {
        id
    }
}

/// Distinct + Join: when the select list only touches the FROM table,
/// rewrite the join as an EXISTS semi-join (which cannot produce
/// duplicates), dropping the DISTINCT.
pub fn distinct_join(d: &Detection, ctx: &Context) -> Option<Fix> {
    let parsed = statement_at(d, ctx)?;
    let Statement::Select(sel) = &parsed.stmt else { return None };
    if !sel.distinct || sel.joins.len() != 1 {
        return None;
    }
    let from = sel.from.as_ref()?;
    let join = &sel.joins[0];
    let on = join.on?;
    if join.table.subquery.is_some() || from.subquery.is_some() {
        return None;
    }
    // Every projected column must belong to the outer table.
    let outer_binding = from.binding().to_ascii_lowercase();
    let inner_binding = join.table.binding().to_ascii_lowercase();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard { qualifier: Some(q) }
                if q.to_ascii_lowercase() == outer_binding => {}
            SelectItem::Wildcard { .. } => return None,
            SelectItem::Expr { expr, .. } => {
                for (q, _) in parsed.arena.column_refs(*expr) {
                    match q {
                        Some(q) if q.to_ascii_lowercase() == inner_binding => return None,
                        _ => {}
                    }
                }
            }
        }
    }
    let mut arena = parsed.arena.clone();
    let one = arena.alloc(Expr::NumberLit("1".into()));
    let sub = Select {
        distinct: false,
        items: vec![SelectItem::Expr { expr: one, alias: None }],
        from: Some(join.table.clone()),
        joins: vec![],
        where_clause: Some(on),
        group_by: ExprRange::EMPTY,
        having: None,
        order_by: vec![],
        limit: None,
        set_op_tail: None,
    };
    let sub_id = arena.alloc(Expr::Subquery(Box::new(sub)));
    let exists = arena.alloc(Expr::Unary { op: "EXISTS".into(), expr: sub_id });
    let mut fixed = sel.clone();
    fixed.distinct = false;
    fixed.joins.clear();
    fixed.where_clause = Some(match fixed.where_clause.take() {
        Some(w) => arena.alloc(Expr::Binary { left: w, op: "AND".into(), right: exists }),
        None => exists,
    });
    Some(Fix::Rewrite { original: parsed.text(), fixed: fixed.to_sql(&arena) })
}

/// Enumerated Types (Fig 5): introduce a lookup table and re-point the
/// column at it.
pub fn enumerated_types(d: &Detection, ctx: &Context) -> Option<Fix> {
    // Identify (table, column, values) from the locus or the statement.
    let (table, column, values) = enum_site(d, ctx)?;
    let lookup = format!("{}_{}", table, column);
    let mut statements = vec![
        format!(
            "CREATE TABLE {lookup} ({column}_ID INTEGER PRIMARY KEY, {column}_Name VARCHAR(30) NOT NULL UNIQUE)"
        ),
    ];
    for (i, v) in values.iter().enumerate() {
        statements.push(format!(
            "INSERT INTO {lookup} ({column}_ID, {column}_Name) VALUES ({}, '{}')",
            i + 1,
            v.replace('\'', "''")
        ));
    }
    statements.push(format!(
        "ALTER TABLE {table} ADD COLUMN {column}_ID INTEGER REFERENCES {lookup}({column}_ID)"
    ));
    statements.push(format!(
        "-- backfill: UPDATE {table} SET {column}_ID = (SELECT {column}_ID FROM {lookup} WHERE {column}_Name = {table}.{column})"
    ));
    statements.push(format!("ALTER TABLE {table} DROP COLUMN {column}"));
    let impacted = impacted_statements(ctx, &table, &column);
    Some(Fix::SchemaChange { statements, impacted_queries: impacted })
}

fn enum_site(d: &Detection, ctx: &Context) -> Option<(String, String, Vec<String>)> {
    match &d.locus {
        Locus::Column { table, column } => {
            let values = ctx
                .schema
                .table(table)
                .and_then(|t| {
                    t.checks.iter().find_map(|c| {
                        c.in_list.as_ref().and_then(|(col, vals)| {
                            col.eq_ignore_ascii_case(column).then(|| vals.clone())
                        })
                    })
                })
                .unwrap_or_default();
            Some((table.clone(), column.clone(), values.iter().map(|v| v.to_string()).collect()))
        }
        Locus::Statement { index } => {
            let stmt = &ctx.statements.get(*index)?.parsed.stmt;
            match stmt {
                Statement::AlterTable(at) => {
                    if let AlterAction::AddConstraint(tc) = &at.action {
                        if let TableConstraintKind::Check(ch) = &tc.kind {
                            if let Some((col, vals)) = &ch.in_list {
                                return Some((
                                    at.table.name().to_string(),
                                    col.to_string(),
                                    vals.iter().map(|v| v.to_string()).collect(),
                                ));
                            }
                        }
                    }
                    None
                }
                Statement::CreateTable(ct) => {
                    // ENUM column or CHECK IN-list.
                    for col in &ct.columns {
                        if let Some(ty) = &col.data_type {
                            if ty.name == "ENUM" {
                                let vals = ty
                                    .args
                                    .iter()
                                    .map(|a| a.trim_matches('\'').to_string())
                                    .collect();
                                return Some((
                                    ct.name.name().to_string(),
                                    col.name.to_string(),
                                    vals,
                                ));
                            }
                        }
                    }
                    for tc in &ct.constraints {
                        if let TableConstraintKind::Check(ch) = &tc.kind {
                            if let Some((col, vals)) = &ch.in_list {
                                return Some((
                                    ct.name.name().to_string(),
                                    col.to_string(),
                                    vals.iter().map(|v| v.to_string()).collect(),
                                ));
                            }
                        }
                    }
                    None
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Multi-Valued Attribute (§2.1.1 / §6): create the intersection table,
/// drop the list column, and rewrite impacted queries as index joins.
pub fn multi_valued_attribute(d: &Detection, ctx: &Context) -> Option<Fix> {
    let (table, column) = mva_site(d, ctx)?;
    // Guess the referenced entity from the column name: `User_IDs` → Users.
    let stem = column
        .trim_end_matches("_ids")
        .trim_end_matches("_IDS")
        .trim_end_matches("IDs")
        .trim_end_matches("ids")
        .trim_end_matches('_');
    let entity = if stem.is_empty() { "Item".to_string() } else { format!("{stem}s") };
    let entity_id = format!("{stem}_ID");
    let owner_pk = ctx
        .schema
        .table(&table)
        .and_then(|t| t.primary_key.first().cloned())
        .unwrap_or_else(|| format!("{table}_ID").into());
    let intersection = format!("{table}_{entity}");
    let statements = vec![
        format!(
            "CREATE TABLE {intersection} ({entity_id} VARCHAR(10) REFERENCES {entity}({entity_id}), \
             {owner_pk} VARCHAR(10) REFERENCES {table}({owner_pk}), \
             PRIMARY KEY ({entity_id}, {owner_pk}))"
        ),
        format!("-- backfill {intersection} by splitting {table}.{column}"),
        format!("ALTER TABLE {table} DROP COLUMN {column}"),
    ];
    let impacted = impacted_statements(ctx, &table, &column)
        .into_iter()
        .map(|(idx, _orig)| {
            (
                idx,
                format!(
                    "SELECT * FROM {intersection} AS H JOIN {table} AS T ON H.{owner_pk} = T.{owner_pk} \
                     WHERE H.{entity_id} = ?"
                ),
            )
        })
        .collect();
    Some(Fix::SchemaChange { statements, impacted_queries: impacted })
}

fn mva_site(d: &Detection, ctx: &Context) -> Option<(String, String)> {
    match &d.locus {
        Locus::Column { table, column } => Some((table.clone(), column.clone())),
        Locus::Statement { index } => {
            let stmt = &ctx.statements.get(*index)?.parsed.stmt;
            // DDL site: the id-list text column itself.
            if let Statement::CreateTable(ct) = stmt {
                for col in &ct.columns {
                    let textual =
                        col.data_type.as_ref().map(|t| t.is_textual()).unwrap_or(false);
                    if textual && crate::detect::intra::id_list_column(&col.name) {
                        return Some((ct.name.name().to_string(), col.name.to_string()));
                    }
                }
            }
            let ann = &ctx.statements.get(*index)?.ann;
            // Pick the pattern-predicate column, resolved to its table.
            let col = ann
                .predicates
                .iter()
                .find(|p| {
                    matches!(p.op.as_str(), "LIKE" | "ILIKE" | "REGEXP" | "GLOB" | "SIMILAR TO")
                })
                .map(|p| p.column.clone())
                .or_else(|| {
                    ann.join_conditions
                        .iter()
                        .find(|j| j.is_pattern)
                        .map(|j| j.left.1.clone())
                })?;
            let table = ann.tables.first()?.clone();
            Some((table.into(), col.into()))
        }
        _ => None,
    }
}

/// No Foreign Key: emit the ALTER TABLE that declares the constraint.
pub fn no_foreign_key(d: &Detection, ctx: &Context) -> Option<Fix> {
    let Locus::Column { table, column } = &d.locus else { return None };
    // Find the PK side from the workload's join graph.
    let target = ctx.workload.join_edges.keys().find_map(|e| {
        if e.left.0.eq_ignore_ascii_case(table) && e.left.1.eq_ignore_ascii_case(column) {
            Some(e.right.clone())
        } else if e.right.0.eq_ignore_ascii_case(table) && e.right.1.eq_ignore_ascii_case(column)
        {
            Some(e.left.clone())
        } else {
            None
        }
    })?;
    let stmt = format!(
        "ALTER TABLE {table} ADD CONSTRAINT fk_{table}_{column} FOREIGN KEY ({column}) REFERENCES {}({})",
        target.0, target.1
    );
    Some(Fix::SchemaChange { statements: vec![stmt], impacted_queries: vec![] })
}

/// Index Underuse: emit the CREATE INDEX.
pub fn index_underuse(d: &Detection, _ctx: &Context) -> Option<Fix> {
    let Locus::Column { table, column } = &d.locus else { return None };
    Some(Fix::SchemaChange {
        statements: vec![format!("CREATE INDEX idx_{table}_{column} ON {table} ({column})")],
        impacted_queries: vec![],
    })
}

/// Index Overuse: emit the DROP INDEX.
pub fn index_overuse(d: &Detection, _ctx: &Context) -> Option<Fix> {
    let Locus::Index { index } = &d.locus else { return None };
    Some(Fix::SchemaChange {
        statements: vec![format!("DROP INDEX {index}")],
        impacted_queries: vec![],
    })
}

/// Rounding Errors: switch FLOAT columns to exact NUMERIC.
pub fn rounding_errors(d: &Detection, ctx: &Context) -> Option<Fix> {
    match &d.locus {
        Locus::Column { table, column } => Some(Fix::SchemaChange {
            statements: vec![format!(
                "ALTER TABLE {table} ALTER COLUMN {column} TYPE NUMERIC(19, 4)"
            )],
            impacted_queries: vec![],
        }),
        Locus::Statement { index } => {
            let parsed = &ctx.statements.get(*index)?.parsed;
            let Statement::CreateTable(ct) = &parsed.stmt else { return None };
            let mut fixed = ct.clone();
            let mut changed = false;
            for col in &mut fixed.columns {
                if let Some(ty) = &mut col.data_type {
                    if ty.is_inexact_fractional() {
                        *ty = TypeName {
                            name: "NUMERIC".into(),
                            args: vec!["19".into(), "4".into()],
                            modifiers: vec![],
                        };
                        changed = true;
                    }
                }
            }
            changed.then(|| Fix::Rewrite { original: parsed.text(), fixed: fixed.to_sql(&parsed.arena) })
        }
        _ => None,
    }
}

/// Statements whose annotations reference `table.column` — the paper's
/// `GetImpactedQueries`.
fn impacted_statements(ctx: &Context, table: &str, column: &str) -> Vec<(usize, String)> {
    ctx.statements
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            let touches_table =
                s.ann.tables.iter().any(|t| t.eq_ignore_ascii_case(table));
            let touches_col = s
                .ann
                .columns
                .iter()
                .any(|c| c.column.eq_ignore_ascii_case(column))
                || s.ann
                    .predicates
                    .iter()
                    .any(|p| p.column.eq_ignore_ascii_case(column));
            touches_table && touches_col
        })
        .map(|(i, s)| (i, s.parsed.text()))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::anti_pattern::AntiPatternKind;
    use crate::context::ContextBuilder;
    use crate::detect::Detector;
    use crate::fix::FixEngine;

    fn fix_for(sql: &str, kind: AntiPatternKind) -> Fix {
        let ctx = ContextBuilder::new().add_script(sql).build();
        let report = Detector::default().detect(&ctx);
        let d = report
            .detections
            .iter()
            .find(|d| d.kind == kind)
            .unwrap_or_else(|| panic!("{kind} not detected in: {sql}"));
        FixEngine.fix(d, &ctx)
    }

    #[test]
    fn implicit_columns_rewritten_from_schema() {
        // Example 2 from the paper.
        let f = fix_for(
            "CREATE TABLE Tenant (Tenant_ID TEXT PRIMARY KEY, Zone_ID TEXT, Active BOOLEAN, User_IDs TEXT);\
             INSERT INTO Tenant VALUES ('T1', 'Z1', True, 'U9');",
            AntiPatternKind::ImplicitColumns,
        );
        let Fix::Rewrite { fixed, .. } = f else { panic!("expected rewrite, got {f:?}") };
        assert!(
            fixed.contains("(Tenant_ID, Zone_ID, Active, User_IDs)"),
            "column list injected: {fixed}"
        );
    }

    #[test]
    fn implicit_columns_arity_mismatch_falls_back() {
        let f = fix_for(
            "CREATE TABLE t (a INT, b INT, c INT);\
             INSERT INTO t VALUES (1, 2);",
            AntiPatternKind::ImplicitColumns,
        );
        assert!(matches!(f, Fix::Textual { .. }), "ambiguous → textual");
    }

    #[test]
    fn wildcard_expanded() {
        let f = fix_for(
            "CREATE TABLE t (a INT PRIMARY KEY, b TEXT);\
             SELECT * FROM t WHERE b = 'x';",
            AntiPatternKind::ColumnWildcard,
        );
        let Fix::Rewrite { fixed, .. } = f else { panic!("{f:?}") };
        assert!(fixed.starts_with("SELECT a, b FROM t"), "{fixed}");
    }

    #[test]
    fn wildcard_unknown_table_is_textual() {
        let f = fix_for("SELECT * FROM mystery", AntiPatternKind::ColumnWildcard);
        assert!(matches!(f, Fix::Textual { .. }));
    }

    #[test]
    fn concat_nulls_coalesced() {
        let f = fix_for(
            "CREATE TABLE u (first TEXT, last TEXT);\
             SELECT first || last FROM u;",
            AntiPatternKind::ConcatenateNulls,
        );
        let Fix::Rewrite { fixed, .. } = f else { panic!("{f:?}") };
        assert!(fixed.contains("COALESCE(first, '')"), "{fixed}");
        assert!(fixed.contains("COALESCE(last, '')"), "{fixed}");
    }

    #[test]
    fn distinct_join_becomes_exists() {
        let f = fix_for(
            "SELECT DISTINCT t.a FROM t JOIN u ON t.id = u.tid",
            AntiPatternKind::DistinctJoin,
        );
        let Fix::Rewrite { fixed, .. } = f else { panic!("{f:?}") };
        assert!(fixed.contains("EXISTS"), "{fixed}");
        assert!(!fixed.contains("DISTINCT"), "{fixed}");
        assert!(!fixed.contains("JOIN"), "{fixed}");
    }

    #[test]
    fn enumerated_types_lookup_table_from_paper_example4() {
        let f = fix_for(
            "CREATE TABLE User (User_ID TEXT PRIMARY KEY, Role VARCHAR(5));\
             ALTER TABLE User ADD CONSTRAINT User_Role_Check CHECK (Role IN ('R1','R2','R3'));",
            AntiPatternKind::EnumeratedTypes,
        );
        let Fix::SchemaChange { statements, .. } = f else { panic!("{f:?}") };
        assert!(statements[0].contains("CREATE TABLE User_Role"), "{statements:?}");
        assert!(statements.iter().any(|s| s.contains("'R2'")));
        assert!(statements.iter().any(|s| s.contains("DROP COLUMN Role")));
    }

    #[test]
    fn mva_intersection_table_from_paper() {
        let f = fix_for(
            "CREATE TABLE Tenants (Tenant_ID TEXT PRIMARY KEY, User_IDs TEXT);\
             SELECT * FROM Tenants WHERE User_IDs LIKE '[[:<:]]U1[[:>:]]';",
            AntiPatternKind::MultiValuedAttribute,
        );
        let Fix::SchemaChange { statements, impacted_queries } = f else { panic!("{f:?}") };
        assert!(statements.iter().any(|s| s.contains("CREATE TABLE")), "{statements:?}");
        assert!(statements.iter().any(|s| s.contains("DROP COLUMN User_IDs")));
        assert!(!impacted_queries.is_empty(), "LIKE query must be rewritten");
        assert!(impacted_queries[0].1.contains("JOIN"));
    }

    #[test]
    fn no_foreign_key_alter_statement() {
        let f = fix_for(
            "CREATE TABLE Tenant (Tenant_ID INTEGER PRIMARY KEY);\
             CREATE TABLE Q (Q_ID INTEGER PRIMARY KEY, Tenant_ID INTEGER);\
             SELECT * FROM Q JOIN Tenant t ON t.Tenant_ID = Q.Tenant_ID;",
            AntiPatternKind::NoForeignKey,
        );
        let Fix::SchemaChange { statements, .. } = f else { panic!("{f:?}") };
        assert!(statements[0].contains("FOREIGN KEY (tenant_id)"), "{statements:?}");
        assert!(statements[0].to_lowercase().contains("references tenant"));
    }

    #[test]
    fn index_fixes() {
        let f = fix_for(
            "CREATE TABLE t (id INT PRIMARY KEY, zone TEXT);\
             SELECT * FROM t WHERE zone = 'Z';",
            AntiPatternKind::IndexUnderuse,
        );
        let Fix::SchemaChange { statements, .. } = f else { panic!("{f:?}") };
        assert!(statements[0].starts_with("CREATE INDEX"));

        let f = fix_for(
            "CREATE TABLE t (id INT PRIMARY KEY, a INT);\
             CREATE INDEX ia ON t (a);\
             SELECT * FROM t WHERE id = 1;",
            AntiPatternKind::IndexOveruse,
        );
        let Fix::SchemaChange { statements, .. } = f else { panic!("{f:?}") };
        assert_eq!(statements[0], "DROP INDEX ia");
    }

    #[test]
    fn rounding_errors_rewrites_create_table() {
        let f = fix_for(
            "CREATE TABLE p (id INT PRIMARY KEY, price FLOAT)",
            AntiPatternKind::RoundingErrors,
        );
        let Fix::Rewrite { fixed, .. } = f else { panic!("{f:?}") };
        assert!(fixed.contains("NUMERIC(19, 4)"), "{fixed}");
        assert!(!fixed.contains("FLOAT"));
    }
}
