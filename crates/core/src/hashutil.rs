//! Shared hashing utilities for the hot maps of the batch and
//! incremental-analysis paths.

use std::hash::{BuildHasherDefault, Hasher};

/// Pass-through hasher for keys that are already high-quality hashes
/// (the precomputed 128-bit content hash). Folding the halves is enough;
/// running FNV output through SipHash again would only burn cycles on
/// the hottest maps in the batch path.
#[derive(Default)]
pub(crate) struct PrehashedHasher(u64);

impl Hasher for PrehashedHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Only u128 keys are ever hashed here; fold whatever arrives.
        for chunk in bytes.chunks(8) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            self.0 ^= u64::from_le_bytes(b);
        }
    }
    fn write_u128(&mut self, i: u128) {
        self.0 = (i as u64) ^ ((i >> 64) as u64);
    }
}

/// `BuildHasher` for maps keyed by precomputed 128-bit hashes.
pub(crate) type Prehashed = BuildHasherDefault<PrehashedHasher>;
