//! Delta-based warm re-check properties (ISSUE 9).
//!
//! 1. **Byte-identity**: a `CheckSession::recheck` outcome must equal a
//!    cold `check_workload` of the edited script — detections, ranking,
//!    fixes, diagnostics — at every thread count, cache on and off,
//!    including DDL edits and fallback paths.
//! 2. **Delta-vs-rebuild**: the session's incrementally-maintained
//!    `WorkloadProfile` must match a from-scratch build (modulo all-zero
//!    usage entries, which retract leaves behind by design and which no
//!    consumer can observe).
//! 3. **Column-granular eviction**: a DDL edit to an untouched column
//!    evicts nothing (never-over-evict) while the outcome still matches
//!    cold (never-stale).

use sqlcheck::context::{ColumnUsage, WorkloadProfile};
use sqlcheck::{BatchOptions, Edit, SqlCheck, WorkloadOutcome};
use sqlcheck_minidb::database::Database;
use sqlcheck_minidb::schema::{Column, TableSchema};
use sqlcheck_minidb::value::{DataType, Value};

/// Deterministic xorshift so edit scripts are reproducible.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Render every outcome surface the session patches; equality here is
/// the "byte-identical" acceptance bar.
fn fingerprint(w: &WorkloadOutcome) -> String {
    let o = &w.outcome;
    let mut s = String::new();
    for d in &o.report.detections {
        s.push_str(&format!("{d:?}\n"));
    }
    for r in o.ranked() {
        s.push_str(&format!("{:.6} {:?}\n", r.score, r.detection));
    }
    for f in o.fixes() {
        s.push_str(&format!("{f:?}\n"));
    }
    for d in &o.diagnostics {
        s.push_str(&format!("{d:?}\n"));
    }
    s
}

/// Normalize a profile for delta-vs-rebuild comparison: drop all-zero
/// usage entries (retract leaves them; no consumer reads them).
fn normalized_usage(p: &WorkloadProfile) -> Vec<((String, String), ColumnUsage)> {
    let mut v: Vec<_> = p
        .iter_usage()
        .filter(|(_, _, u)| {
            u.eq_predicates + u.range_predicates + u.pattern_predicates + u.group_by
                + u.order_by
                + u.join
                + u.writes
                > 0
        })
        .map(|(t, c, u)| ((t.to_string(), c.to_string()), u.clone()))
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

fn seed_script() -> String {
    let mut s = String::from(
        "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(64), bio TEXT, age INT);\n\
         CREATE TABLE orders (id INT PRIMARY KEY, user_id INT, total FLOAT, note VARCHAR(20));\n\
         CREATE INDEX idx_orders_user ON orders (user_id);\n",
    );
    for i in 0..40 {
        match i % 5 {
            0 => s.push_str(&format!(
                "SELECT name FROM users WHERE id = {i} AND age > {};\n",
                i % 7
            )),
            1 => s.push_str(
                "SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.user_id \
                 WHERE o.total > 10 ORDER BY o.total;\n",
            ),
            2 => s.push_str(&format!("UPDATE orders SET note = 'x{i}' WHERE id = {i};\n")),
            3 => s.push_str("SELECT name FROM users WHERE bio LIKE '%rust%';\n"),
            // Duplicate text on purpose: dedup + fan-out paths.
            _ => s.push_str("SELECT name FROM users WHERE id = 1;\n"),
        }
    }
    s
}

/// Pool of single-statement replacements (non-DDL), exercising fresh
/// texts, revivals, shared texts, and span-length changes.
fn replacement(rng: &mut Rng, salt: usize) -> String {
    match rng.below(6) {
        0 => format!("SELECT name FROM users WHERE id = {salt}"),
        1 => "SELECT * FROM orders".to_string(),
        2 => format!("UPDATE users SET bio = 'longer replacement text {salt}' WHERE id = {salt}"),
        3 => "SELECT name FROM users WHERE id = 1".to_string(),
        4 => format!(
            "SELECT u.name FROM users u JOIN orders o ON u.id = o.user_id WHERE o.id = {salt}"
        ),
        _ => "SELECT age FROM users GROUP BY age ORDER BY RAND()".to_string(),
    }
}

fn opts_for(threads: usize) -> BatchOptions {
    BatchOptions { threads: Some(threads), ..BatchOptions::default() }
}

fn tool(cache: bool) -> SqlCheck {
    let t = SqlCheck::new();
    if cache {
        t.with_cache(4096)
    } else {
        t
    }
}

/// Core property: random single-statement edit batches over several
/// rounds stay byte-identical to cold re-checks of the edited script,
/// across thread counts and cache on/off.
#[test]
fn random_edit_rounds_match_cold_checks() {
    for &threads in &[1usize, 2, 4] {
        for &cached in &[true, false] {
            let opts = opts_for(threads);
            let mut session = tool(cached).into_session(seed_script(), opts.clone());
            let mut rng = Rng(0x5EED_0000 + threads as u64 * 31 + cached as u64);
            let n = session.outcome().stats.statements;
            for round in 0..6 {
                // Up to 3 distinct indices per round. Skip index 0..3
                // (the DDL statements) here; DDL edits get their own
                // tests below.
                let mut idx: Vec<usize> = Vec::new();
                while idx.len() < 1 + rng.below(3) {
                    let i = 3 + rng.below(n - 3);
                    if !idx.contains(&i) {
                        idx.push(i);
                    }
                }
                idx.sort();
                let edits: Vec<Edit> = idx
                    .iter()
                    .map(|&i| Edit::new(i, replacement(&mut rng, round * 100 + i)))
                    .collect();
                session.recheck(&edits);
                assert_eq!(session.fallbacks(), 0, "non-DDL edits must stay incremental");

                let cold = SqlCheck::new().check_workload(session.script(), &opts);
                assert_eq!(
                    fingerprint(session.outcome()),
                    fingerprint(&cold),
                    "threads={threads} cached={cached} round={round}"
                );
                // Delta-vs-rebuild on the retained workload profile.
                let warm_profile = &session.outcome().outcome.context.workload;
                let cold_profile = &cold.outcome.context.workload;
                assert_eq!(warm_profile.statement_count, cold_profile.statement_count);
                assert_eq!(warm_profile.join_edges, cold_profile.join_edges);
                assert_eq!(warm_profile.table_refs, cold_profile.table_refs);
                assert_eq!(normalized_usage(warm_profile), normalized_usage(cold_profile));
            }
        }
    }
}

/// DDL edits take the refold path (with a cache) and must still match
/// cold byte-for-byte; the cache's column-granular tiers decide what
/// re-runs.
#[test]
fn ddl_edit_rounds_match_cold_checks() {
    for &threads in &[1usize, 4] {
        let opts = opts_for(threads);
        let mut session = tool(true).into_session(seed_script(), opts.clone());
        let ddl_variants = [
            // Touched column type change: evicts users-dependent entries.
            "CREATE TABLE users (id BIGINT PRIMARY KEY, name VARCHAR(64), bio TEXT, age INT)",
            // Added column: core untouched, no eviction of untouched deps.
            "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(64), bio TEXT, age INT, \
             flags INT)",
            // Back to the original text (revival).
            "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(64), bio TEXT, age INT)",
        ];
        for (round, ddl) in ddl_variants.iter().enumerate() {
            session.recheck(&[Edit::new(0, ddl.to_string())]);
            assert_eq!(session.fallbacks(), 0, "cached DDL edits stay incremental");
            let cold = SqlCheck::new().check_workload(session.script(), &opts);
            assert_eq!(
                fingerprint(session.outcome()),
                fingerprint(&cold),
                "threads={threads} ddl round={round}"
            );
            let warm_profile = &session.outcome().outcome.context.workload;
            let cold_profile = &cold.outcome.context.workload;
            // The refold path rebuilds the profile exactly — no zombie
            // normalization should even be needed, but compare normalized
            // to keep one definition of equality.
            assert_eq!(normalized_usage(warm_profile), normalized_usage(cold_profile));
        }
    }
}

/// DDL edit without a cache: correctness via declared fallback.
#[test]
fn ddl_edit_without_cache_falls_back_and_matches() {
    let opts = BatchOptions::default();
    let mut session = tool(false).into_session(seed_script(), opts.clone());
    session.recheck(&[Edit::new(
        0,
        "CREATE TABLE users (id BIGINT PRIMARY KEY, name VARCHAR(64), bio TEXT, age INT)",
    )]);
    assert_eq!(session.fallbacks(), 1, "no cache → DDL rebuilds cold");
    let cold = SqlCheck::new().check_workload(session.script(), &opts);
    assert_eq!(fingerprint(session.outcome()), fingerprint(&cold));
}

/// Column-granular invalidation, observed end-to-end through the
/// session: ADD COLUMN evicts nothing (untouched deps), a column retype
/// evicts only dependents — and both stay byte-identical to cold.
#[test]
fn column_granular_eviction_never_over_evicts_or_goes_stale() {
    let opts = BatchOptions::default();
    let mut session = tool(true).into_session(seed_script(), opts.clone());

    // ADD COLUMN `flags`: no existing statement reads it, so the sweep
    // must evict nothing and the only recomputed text is the DDL itself.
    session.recheck(&[Edit::new(
        0,
        "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(64), bio TEXT, age INT, flags INT)",
    )]);
    let stats = &session.outcome().stats;
    // The only eviction is the replaced DDL text's own entry (a whole-
    // table dependency); every query entry survives because none reads
    // the new column.
    assert_eq!(
        stats.incremental_evictions, 1,
        "ADD COLUMN evicts only the stale DDL entry"
    );
    assert_eq!(stats.column_evictions, 0, "no column-classified evictions");
    assert_eq!(stats.incremental_misses, 1, "only the edited DDL text re-analysed");
    assert!(stats.warm_dirty_statements >= 1);
    let cold = SqlCheck::new().check_workload(session.script(), &opts);
    assert_eq!(fingerprint(session.outcome()), fingerprint(&cold), "never stale");

    // Retype `users.id` — referenced by most statements: dependents are
    // evicted (column- or core-classified), and the outcome still
    // matches cold.
    session.recheck(&[Edit::new(
        0,
        "CREATE TABLE users (id BIGINT PRIMARY KEY, name VARCHAR(64), bio TEXT, age INT, \
         flags INT)",
    )]);
    let stats = &session.outcome().stats;
    assert!(stats.incremental_evictions > 0, "touched column must evict dependents");
    let cold = SqlCheck::new().check_workload(session.script(), &opts);
    assert_eq!(fingerprint(session.outcome()), fingerprint(&cold), "never stale");
    assert_eq!(session.fallbacks(), 0);
}

/// Guard conditions route through the fallback and still match cold:
/// multi-statement replacement, empty replacement, parse-diagnostic
/// replacement.
#[test]
fn guarded_edits_fall_back_and_match() {
    let opts = BatchOptions::default();
    let cases: [&str; 3] = [
        "SELECT 1; SELECT 2;",               // splits to two statements
        "",                                   // removes the statement
        "SELECT name FROM users WHERE (id =", // parse diagnostics
    ];
    for (k, text) in cases.iter().enumerate() {
        let mut session = tool(true).into_session(seed_script(), opts.clone());
        session.recheck(&[Edit::new(5, text.to_string())]);
        assert_eq!(session.fallbacks(), 1, "case {k} must fall back");
        let cold = SqlCheck::new().check_workload(session.script(), &opts);
        assert_eq!(fingerprint(session.outcome()), fingerprint(&cold), "case {k}");
    }
}

/// Sessions with an attached database: data units replay, DDL refolds
/// merge the database schema back in, outcomes match cold (which gets
/// the same shared database).
#[test]
fn database_backed_session_matches_cold() {
    let mk = || {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("metrics")
                .column(Column::new("id", DataType::Int).not_null())
                .column(Column::new("label", DataType::Text))
                .column(Column::new("val", DataType::Float))
                .primary_key(&["id"]),
        )
        .expect("seed schema");
        for (id, label, val) in [(1, "a", 1.5), (2, "a", 2.5), (3, "b", 3.5)] {
            db.insert("metrics", vec![Value::Int(id), Value::text(label), Value::Float(val)])
                .expect("seed row");
        }
        SqlCheck::new().with_database(db).with_cache(1024)
    };

    let script = "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(64));\n\
                  SELECT name FROM users WHERE id = 1;\n\
                  SELECT label FROM metrics WHERE val > 2;\n\
                  SELECT name FROM users WHERE id = 2;\n";
    let opts = BatchOptions::default();
    let mut session = mk().into_session(script, opts.clone());

    // Non-DDL edit.
    session.recheck(&[Edit::new(2, "SELECT * FROM metrics WHERE val > 2")]);
    let cold = mk().check_workload(session.script(), &opts);
    assert_eq!(fingerprint(session.outcome()), fingerprint(&cold));
    assert_eq!(session.outcome().stats.data_units_reused, 1, "metrics unit replayed");

    // DDL edit: the db-backed `metrics` table must be re-merged into the
    // refolded schema.
    session.recheck(&[Edit::new(
        0,
        "CREATE TABLE users (id BIGINT PRIMARY KEY, name VARCHAR(64))",
    )]);
    let cold = mk().check_workload(session.script(), &opts);
    assert_eq!(fingerprint(session.outcome()), fingerprint(&cold));
    assert_eq!(session.fallbacks(), 0);
}

/// Warm stats must attribute the work to the edit set, not the workload:
/// dirty statements stay bounded by edits on the non-DDL path and the
/// per-phase warm timers are populated.
#[test]
fn warm_stats_reflect_edit_proportionality() {
    let opts = BatchOptions::default();
    let mut session = tool(true).into_session(seed_script(), opts);
    let n = session.outcome().stats.statements;
    session.recheck(&[Edit::new(7, "SELECT age FROM users WHERE age = 41")]);
    let stats = &session.outcome().stats;
    assert_eq!(stats.statements, n);
    assert!(
        stats.warm_dirty_statements <= 2,
        "one fresh text should dirty at most its own occurrences, got {}",
        stats.warm_dirty_statements
    );
    assert!(stats.incremental_misses <= 1);
    // The new eq-predicate may dirty an inter-unit digest; all four
    // units must be accounted for either way.
    assert_eq!(stats.inter_units_reused + stats.inter_units_recomputed, 4);
    assert!(stats.total_micros > 0);
    // Repeating the identical recheck revives the retired text — a pure
    // cache hit, zero dirty statements.
    session.recheck(&[Edit::new(7, "SELECT name FROM users WHERE bio LIKE '%rust%'")]);
    session.recheck(&[Edit::new(7, "SELECT age FROM users WHERE age = 41")]);
    let stats = &session.outcome().stats;
    assert_eq!(stats.incremental_misses, 0, "revived text replays from cache");
}
