//! Property tests (satellites of the scale-out PR): the cost-aware
//! self-scheduling worker pool and the sharded incremental cache must be
//! invisible in the output.
//!
//! * batch detection and cached re-checks stay **byte-identical** to the
//!   sequential reference across thread counts {1, 2, 4, 8} on skewed
//!   inputs — one giant compound statement among many cheap hot-template
//!   occurrences, the shape where LPT scheduling actually reorders work;
//! * `IncrementalCache` is **shard-count invariant**: the same check
//!   sequence against a 1-shard and an N-shard cache produces the same
//!   hit/miss/eviction totals and the same outputs;
//! * many sessions sharing one cache concurrently stay correct.
//!
//! The build environment has no access to the `proptest` crate, so the
//! properties run over deterministically generated random scripts: same
//! seeds, same cases, every run.

use sqlcheck::{
    BatchOptions, ContextBuilder, Detector, FrontendOptions, IncrementalCache,
};
use sqlcheck_minidb::stats::SmallRng;

/// A skewed script: ~90% of statements instantiate one hot template with
/// a fresh literal each (many cheap unique texts under one fingerprint),
/// one statement is a giant `BEGIN…END` body (`sub_stmts` sub-statements
/// — a single expensive intra unit), and the rest draw from a small
/// varied pool. DDL up front so contextual rules have a catalog.
fn skewed_script(rng: &mut SmallRng, statements: usize, sub_stmts: usize) -> String {
    let mut script = String::from(
        "CREATE TABLE hot (id INT PRIMARY KEY, v TEXT);\n\
         CREATE TABLE side (a INT, b FLOAT);\n",
    );
    let giant_at = 1 + rng.gen_range(statements.max(2) - 1);
    for i in 0..statements {
        if i == giant_at {
            script.push_str("CREATE PROCEDURE big_sweep() BEGIN ");
            for k in 0..sub_stmts {
                script.push_str(&format!(
                    "UPDATE side SET a = a + {k} WHERE b LIKE '%m{k}%'; "
                ));
            }
            script.push_str("END;\n");
        } else if rng.gen_range(10) < 9 {
            script.push_str(&format!("SELECT id, v FROM hot WHERE id = {i};\n"));
        } else {
            match rng.gen_range(3) {
                0 => script.push_str(&format!("SELECT * FROM side WHERE a = {i};\n")),
                1 => script.push_str(&format!("INSERT INTO side VALUES ({i}, 1.5);\n")),
                _ => script.push_str("SELECT * FROM hot ORDER BY RANDOM();\n"),
            }
        }
    }
    script
}

fn detections_debug(r: &sqlcheck::Report) -> Vec<String> {
    r.detections.iter().map(|d| format!("{d:?}")).collect()
}

/// Cold sequential reference: legacy front-end + per-statement detection.
fn cold_reference(det: &Detector, script: &str) -> Vec<String> {
    let ctx = ContextBuilder::new()
        .with_frontend(FrontendOptions::legacy())
        .add_script(script)
        .build();
    detections_debug(&det.detect(&ctx))
}

/// Tentpole property: on skewed inputs, the weighted scheduler's output
/// is byte-identical to sequential at every thread count — cold and
/// through a warm cache.
#[test]
fn skewed_batch_identical_across_thread_counts() {
    let mut rng = SmallRng::new(0x5CA1E);
    for case in 0..8 {
        let statements = 30 + rng.gen_range(90);
        let sub_stmts = 40 + rng.gen_range(120);
        let script = skewed_script(&mut rng, statements, sub_stmts);
        let det = Detector::default();
        let reference = cold_reference(&det, &script);
        let cache = IncrementalCache::with_shards(4096, 8);
        for threads in [1usize, 2, 4, 8] {
            let opts = BatchOptions { parallel: true, threads: Some(threads), ..BatchOptions::default() };
            let ctx = ContextBuilder::new().add_script(&script).build();
            // Cold path (no cache).
            let cold = det.detect_batch(&ctx, &opts);
            assert_eq!(
                reference,
                detections_debug(&cold.report),
                "case {case}/{threads} threads: skewed batch must equal sequential"
            );
            // Cached path: first iteration populates, later ones replay.
            let cached = det.detect_batch_with(&ctx, &opts, Some(&cache));
            assert_eq!(
                reference,
                detections_debug(&cached.report),
                "case {case}/{threads} threads: cached skewed batch must equal sequential"
            );
        }
        let c = cache.counters();
        assert!(c.hits > 0, "case {case}: re-checks across thread counts must hit");
    }
}

/// The giant statement really is one expensive unit and the hot template
/// really dominates — otherwise the property above passes vacuously.
#[test]
fn skewed_script_is_actually_skewed() {
    let mut rng = SmallRng::new(0xFACE);
    let script = skewed_script(&mut rng, 120, 150);
    let ctx = ContextBuilder::new().add_script(&script).build();
    let longest =
        ctx.statements.iter().map(|s| s.span.end - s.span.start).max().unwrap_or(0);
    assert!(longest > 4_000, "giant unit present ({longest} bytes)");
    let b = Detector::default().detect_batch(&ctx, &BatchOptions::sequential());
    assert!(
        b.stats.unique_texts > 60,
        "hot template must contribute many distinct texts, got {}",
        b.stats.unique_texts
    );
}

/// Shard-count invariance: identical check sequences against caches with
/// different shard counts (ample capacity) must agree on every counter
/// and every output — through priming, a warm re-check, a DDL edit
/// (per-table invalidation), and a config switch (epoch flush).
#[test]
fn cache_shard_count_is_invisible() {
    let mut rng = SmallRng::new(0x54A2D);
    let statements = 80 + rng.gen_range(60);
    let script = skewed_script(&mut rng, statements, 60);
    let edited = script.replace(
        "CREATE TABLE side (a INT, b FLOAT);",
        "CREATE TABLE side (a INT, b FLOAT, c INT);",
    );
    assert_ne!(script, edited);

    let run_sequence = |shards: usize| {
        let det = Detector::default();
        let intra = Detector::new(sqlcheck::DetectionConfig::intra_only());
        let cache = IncrementalCache::with_shards(1 << 16, shards);
        let mut outputs: Vec<Vec<String>> = Vec::new();
        let mut counter_trail = Vec::new();
        let rounds: [(&str, &Detector); 4] =
            [(&script, &det), (&script, &det), (&edited, &det), (&edited, &intra)];
        for (sql, d) in rounds {
            let ctx = ContextBuilder::new().add_script(sql).build();
            let b = d.detect_batch_with(&ctx, &BatchOptions::default(), Some(&cache));
            outputs.push(detections_debug(&b.report));
            counter_trail.push((
                b.stats.incremental_hits,
                b.stats.incremental_misses,
                b.stats.incremental_evictions,
            ));
        }
        (outputs, counter_trail, cache.counters(), cache.len())
    };

    let baseline = run_sequence(1);
    for shards in [2, 8, 64] {
        assert_eq!(
            run_sequence(shards),
            baseline,
            "{shards}-shard cache must behave exactly like 1 shard"
        );
    }
    // And the outputs themselves are right, not merely consistent.
    let det = Detector::default();
    assert_eq!(baseline.0[0], cold_reference(&det, &script));
    assert_eq!(baseline.0[2], cold_reference(&det, &edited));
    // The warm round hit; the DDL round evicted `side` entries only.
    assert!(baseline.1[1].0 > 0, "warm round must hit");
    assert!(baseline.1[2].2 > 0, "DDL round must evict dependents");
    assert!(baseline.1[2].0 > 0, "DDL round must keep entries on unedited tables");
}

/// Concurrent sessions sharing one cache: every session's output stays
/// byte-identical to the sequential reference while all of them hit the
/// same shards, and counters account for every lookup.
#[test]
fn concurrent_sessions_share_one_cache_correctly() {
    let mut rng = SmallRng::new(0xC0C0);
    let script = skewed_script(&mut rng, 100, 50);
    let det = Detector::default();
    let reference = cold_reference(&det, &script);
    let cache = IncrementalCache::new(1 << 16);

    // Prime once so the concurrent phase is read-mostly — the shape the
    // sharded fast path exists for.
    let ctx = ContextBuilder::new().add_script(&script).build();
    let _ = det.detect_batch_with(&ctx, &BatchOptions::default(), Some(&cache));
    let warm_floor = cache.counters();

    std::thread::scope(|s| {
        for t in 0..4usize {
            let (cache, det, script, reference) = (&cache, &det, &script, &reference);
            s.spawn(move || {
                for round in 0..3 {
                    let opts =
                        BatchOptions { parallel: true, threads: Some(1 + (t + round) % 3), ..BatchOptions::default() };
                    let ctx = ContextBuilder::new().add_script(script).build();
                    let b = det.detect_batch_with(&ctx, &opts, Some(cache));
                    assert_eq!(
                        reference,
                        &detections_debug(&b.report),
                        "session {t} round {round}: shared-cache output must stay identical"
                    );
                }
            });
        }
    });

    let c = cache.counters();
    assert_eq!(c.misses, warm_floor.misses, "fully warmed: no concurrent misses");
    assert_eq!(c.evictions, 0, "ample capacity, stable schema: no evictions");
    assert!(
        c.hits >= warm_floor.hits + 12,
        "all 12 session-rounds must hit the shared cache"
    );
}
