//! Property test (satellite of the batch-engine PR): on randomized
//! scripts full of duplicate templates, `Detector::detect_batch` — both
//! sequential-deduped and parallel — must return **byte-identical
//! detections, in the same order**, as the sequential per-statement path.
//!
//! The build environment has no access to the `proptest` crate, so the
//! property runs over deterministically generated random scripts: same
//! seeds, same cases, every run.

use sqlcheck::{
    BatchOptions, ContextBuilder, DetectionConfig, Detector, FrontendOptions, IncrementalCache,
};
use sqlcheck_minidb::stats::SmallRng;

/// Build a random script that is heavy on duplicate templates: a small
/// pool of statement shapes, instantiated with a small pool of literals
/// (so exact duplicates, literal-only variants, and case/whitespace
/// variants all occur), in random order, with some DDL mixed in.
fn random_script(rng: &mut SmallRng, statements: usize) -> String {
    let n_tables = 1 + rng.gen_range(4);
    let tables: Vec<String> = (0..n_tables).map(|i| format!("tab{i}")).collect();
    let mut script = String::new();
    for (i, t) in tables.iter().enumerate() {
        // Some tables get primary keys, some don't; one gets a FLOAT.
        if i % 2 == 0 {
            script.push_str(&format!(
                "CREATE TABLE {t} (id INT PRIMARY KEY, name TEXT, price FLOAT, user_ids TEXT);\n"
            ));
        } else {
            script.push_str(&format!("CREATE TABLE {t} (a INT, b TEXT);\n"));
        }
    }
    // Literal pools kept tiny so duplicates dominate; pattern literals
    // include both AP-triggering (leading-wildcard) and benign shapes —
    // the pair shares a fingerprint but must not share detections.
    let lits = ["1", "2", "42"];
    let pats = ["'%x%'", "'x%'", "'[[:<:]]U1[[:>:]]'", "'U1,U2,U3'"];
    for _ in 0..statements {
        let t = &tables[rng.gen_range(tables.len())];
        let stmt = match rng.gen_range(8) {
            0 => format!("SELECT * FROM {t} WHERE id = {}", lits[rng.gen_range(lits.len())]),
            1 => format!("select * from {t} where id = {}", lits[rng.gen_range(lits.len())]),
            2 => format!("SELECT name FROM {t} WHERE name LIKE {}", pats[rng.gen_range(pats.len())]),
            3 => format!("INSERT INTO {t} VALUES ({}, 'v', 1.5, {})",
                lits[rng.gen_range(lits.len())], pats[rng.gen_range(pats.len())]),
            4 => format!(
                "SELECT DISTINCT a.id FROM {t} a JOIN {t} b ON a.id = b.id WHERE a.id > {}",
                lits[rng.gen_range(lits.len())]
            ),
            5 => format!("UPDATE {t} SET name = {} WHERE id = {}",
                pats[rng.gen_range(pats.len())], lits[rng.gen_range(lits.len())]),
            6 => format!("SELECT * FROM {t}   WHERE  id IN ({}, {})",
                lits[rng.gen_range(lits.len())], lits[rng.gen_range(lits.len())]),
            _ => format!("SELECT * FROM {t} ORDER BY RANDOM()"),
        };
        script.push_str(&stmt);
        script.push_str(";\n");
    }
    script
}

fn detections_debug(r: &sqlcheck::Report) -> Vec<String> {
    r.detections.iter().map(|d| format!("{d:?}")).collect()
}

fn assert_batch_matches(det: &Detector, script: &str, label: &str) {
    let ctx = ContextBuilder::new().add_script(script).build();
    let seq = detections_debug(&det.detect(&ctx));
    let configs = [
        ("batch-sequential", BatchOptions::sequential()),
        ("batch-default", BatchOptions::default()),
        ("batch-2-threads", BatchOptions { parallel: true, threads: Some(2) }),
        ("batch-3-threads", BatchOptions { parallel: true, threads: Some(3) }),
    ];
    for (name, opts) in configs {
        let batch = det.detect_batch(&ctx, &opts);
        let got = detections_debug(&batch.report);
        assert_eq!(seq, got, "{label}/{name}: batch must be byte-identical to sequential");
        // Order within the report is part of the contract, and so is the
        // fan-out bookkeeping.
        assert_eq!(batch.stats.statements, ctx.len(), "{label}/{name}");
        assert_eq!(
            batch.stats.cache_hits,
            batch.stats.statements - batch.stats.unique_texts,
            "{label}/{name}"
        );
        assert!(batch.stats.unique_templates <= batch.stats.unique_texts, "{label}/{name}");
    }
}

/// The core property, across many random scripts and both detector
/// configurations (full and intra-only).
#[test]
fn detect_batch_is_byte_identical_to_sequential() {
    let mut rng = SmallRng::new(0xBA7C4);
    for case in 0..40 {
        let statements = 20 + rng.gen_range(120);
        let script = random_script(&mut rng, statements);
        assert_batch_matches(&Detector::default(), &script, &format!("case {case} full"));
        assert_batch_matches(
            &Detector::new(DetectionConfig::intra_only()),
            &script,
            &format!("case {case} intra"),
        );
    }
}

/// Randomly edit some statements of a script (one per line), producing
/// texts the original never contained. DDL lines are left alone so the
/// schema — and with it the cache epoch — stays stable; the dedicated
/// test below covers schema-changing edits.
fn edit_lines(script: &str, rng: &mut SmallRng) -> String {
    let mut out = String::new();
    for (i, line) in script.lines().enumerate() {
        let ddl = line.starts_with("CREATE") || line.starts_with("ALTER");
        if !line.is_empty() && !ddl && rng.gen_range(10) == 0 {
            out.push_str(&format!("SELECT * FROM tab0 WHERE id = {};\n", 7_000_000 + i));
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Cold sequential reference: legacy front-end (per-statement parse, no
/// sharing) + per-statement detection.
fn cold_reference(det: &Detector, script: &str) -> Vec<String> {
    let ctx = ContextBuilder::new()
        .with_frontend(FrontendOptions::legacy())
        .add_script(script)
        .build();
    detections_debug(&det.detect(&ctx))
}

/// Property (satellite of the parse-once PR): parse-dedup plus a cached
/// re-check must stay byte-identical to a cold sequential `check_script`
/// on randomized duplicate-heavy scripts — across edits, thread counts,
/// and detector-config switches (which must flush the cache, not poison
/// it).
#[test]
fn cached_recheck_is_byte_identical_to_cold_sequential() {
    let mut rng = SmallRng::new(0x1AC);
    for case in 0..12 {
        let statements = 40 + rng.gen_range(120);
        let script = random_script(&mut rng, statements);
        let edited = edit_lines(&script, &mut rng);
        let det = Detector::default();
        let mut cache = IncrementalCache::new(4096);

        for (round, (sql, label)) in
            [(&script, "cold"), (&edited, "edited"), (&script, "back")].iter().enumerate()
        {
            let opts = BatchOptions { parallel: true, threads: Some(1 + round % 3) };
            let ctx = ContextBuilder::new().add_script(sql).build();
            let got =
                detections_debug(&det.detect_batch_with(&ctx, &opts, Some(&mut cache)).report);
            assert_eq!(
                cold_reference(&det, sql),
                got,
                "case {case} round {round} ({label}): cached batch must equal cold sequential"
            );
        }
        // Rounds 2 and 3 revisit texts the cache has seen: hits required.
        let c = cache.counters();
        assert!(c.hits > 0, "case {case}: warm rounds must hit the cache");

        // A config switch invalidates the epoch; results must follow the
        // new config, not the cached one.
        let intra = Detector::new(DetectionConfig::intra_only());
        let ctx = ContextBuilder::new().add_script(&edited).build();
        let got = detections_debug(
            &intra.detect_batch_with(&ctx, &BatchOptions::default(), Some(&mut cache)).report,
        );
        assert_eq!(
            cold_reference(&intra, &edited),
            got,
            "case {case}: config switch must flush, not replay stale entries"
        );
        assert!(cache.counters().evictions > 0, "case {case}: epoch flush counted");
    }
}

/// DDL edits change the schema context, which contextual intra rules
/// depend on — the cache must flush (epoch change) and re-detect.
#[test]
fn schema_edit_invalidates_cached_suppressions() {
    // `tab` has no PK: No Primary Key fires on the CREATE; adding an
    // ALTER later suppresses it. The SELECT's detections are cacheable
    // either way, but the suppression decision depends on the schema.
    let v1 = "CREATE TABLE tab (a INT);\nSELECT * FROM tab WHERE a = 1;\n";
    let v2 = "CREATE TABLE tab (a INT);\nALTER TABLE tab ADD CONSTRAINT pk PRIMARY KEY (a);\nSELECT * FROM tab WHERE a = 1;\n";
    let det = Detector::default();
    let mut cache = IncrementalCache::new(64);
    for sql in [v1, v2, v1] {
        let ctx = ContextBuilder::new().add_script(sql).build();
        let got = detections_debug(
            &det.detect_batch_with(&ctx, &BatchOptions::default(), Some(&mut cache)).report,
        );
        assert_eq!(cold_reference(&det, sql), got, "schema change must invalidate");
    }
}

/// Duplicate-template-heavy scripts must actually exercise the dedup
/// cache (the property above would pass vacuously on all-unique scripts).
#[test]
fn random_scripts_contain_duplicates() {
    let mut rng = SmallRng::new(0xD0D0);
    let script = random_script(&mut rng, 200);
    let ctx = ContextBuilder::new().add_script(&script).build();
    let b = Detector::default().detect_batch(&ctx, &BatchOptions::default());
    assert!(
        b.stats.cache_hits > 50,
        "expected heavy duplication, got {} hits over {} statements",
        b.stats.cache_hits,
        b.stats.statements
    );
    assert!(b.stats.unique_templates < b.stats.unique_texts, "literal variants must fold");
}
