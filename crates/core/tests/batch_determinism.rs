//! Property test (satellite of the batch-engine PR): on randomized
//! scripts full of duplicate templates, `Detector::detect_batch` — both
//! sequential-deduped and parallel — must return **byte-identical
//! detections, in the same order**, as the sequential per-statement path.
//!
//! The build environment has no access to the `proptest` crate, so the
//! property runs over deterministically generated random scripts: same
//! seeds, same cases, every run.

use sqlcheck::{
    BatchOptions, ContextBuilder, DetectionConfig, Detector, FrontendOptions, IncrementalCache,
};
use sqlcheck_minidb::stats::SmallRng;

/// Build a random script that is heavy on duplicate templates: a small
/// pool of statement shapes, instantiated with a small pool of literals
/// (so exact duplicates, literal-only variants, and case/whitespace
/// variants all occur), in random order, with some DDL mixed in.
fn random_script(rng: &mut SmallRng, statements: usize) -> String {
    let n_tables = 1 + rng.gen_range(4);
    let tables: Vec<String> = (0..n_tables).map(|i| format!("tab{i}")).collect();
    let mut script = String::new();
    for (i, t) in tables.iter().enumerate() {
        // Some tables get primary keys, some don't; one gets a FLOAT.
        if i % 2 == 0 {
            script.push_str(&format!(
                "CREATE TABLE {t} (id INT PRIMARY KEY, name TEXT, price FLOAT, user_ids TEXT);\n"
            ));
        } else {
            script.push_str(&format!("CREATE TABLE {t} (a INT, b TEXT);\n"));
        }
    }
    // Literal pools kept tiny so duplicates dominate; pattern literals
    // include both AP-triggering (leading-wildcard) and benign shapes —
    // the pair shares a fingerprint but must not share detections.
    let lits = ["1", "2", "42"];
    let pats = ["'%x%'", "'x%'", "'[[:<:]]U1[[:>:]]'", "'U1,U2,U3'"];
    for _ in 0..statements {
        let t = &tables[rng.gen_range(tables.len())];
        let stmt = match rng.gen_range(8) {
            0 => format!("SELECT * FROM {t} WHERE id = {}", lits[rng.gen_range(lits.len())]),
            1 => format!("select * from {t} where id = {}", lits[rng.gen_range(lits.len())]),
            2 => format!("SELECT name FROM {t} WHERE name LIKE {}", pats[rng.gen_range(pats.len())]),
            3 => format!("INSERT INTO {t} VALUES ({}, 'v', 1.5, {})",
                lits[rng.gen_range(lits.len())], pats[rng.gen_range(pats.len())]),
            4 => format!(
                "SELECT DISTINCT a.id FROM {t} a JOIN {t} b ON a.id = b.id WHERE a.id > {}",
                lits[rng.gen_range(lits.len())]
            ),
            5 => format!("UPDATE {t} SET name = {} WHERE id = {}",
                pats[rng.gen_range(pats.len())], lits[rng.gen_range(lits.len())]),
            6 => format!("SELECT * FROM {t}   WHERE  id IN ({}, {})",
                lits[rng.gen_range(lits.len())], lits[rng.gen_range(lits.len())]),
            _ => format!("SELECT * FROM {t} ORDER BY RANDOM()"),
        };
        script.push_str(&stmt);
        script.push_str(";\n");
    }
    script
}

fn detections_debug(r: &sqlcheck::Report) -> Vec<String> {
    r.detections.iter().map(|d| format!("{d:?}")).collect()
}

fn assert_batch_matches(det: &Detector, script: &str, label: &str) {
    let ctx = ContextBuilder::new().add_script(script).build();
    let seq = detections_debug(&det.detect(&ctx));
    let configs = [
        ("batch-sequential", BatchOptions::sequential()),
        ("batch-default", BatchOptions::default()),
        ("batch-2-threads", BatchOptions { parallel: true, threads: Some(2), ..BatchOptions::default() }),
        ("batch-3-threads", BatchOptions { parallel: true, threads: Some(3), ..BatchOptions::default() }),
    ];
    for (name, opts) in configs {
        let batch = det.detect_batch(&ctx, &opts);
        let got = detections_debug(&batch.report);
        assert_eq!(seq, got, "{label}/{name}: batch must be byte-identical to sequential");
        // Order within the report is part of the contract, and so is the
        // fan-out bookkeeping.
        assert_eq!(batch.stats.statements, ctx.len(), "{label}/{name}");
        assert_eq!(
            batch.stats.cache_hits,
            batch.stats.statements - batch.stats.unique_texts,
            "{label}/{name}"
        );
        assert!(batch.stats.unique_templates <= batch.stats.unique_texts, "{label}/{name}");
    }
}

/// The core property, across many random scripts and both detector
/// configurations (full and intra-only).
#[test]
fn detect_batch_is_byte_identical_to_sequential() {
    let mut rng = SmallRng::new(0xBA7C4);
    for case in 0..40 {
        let statements = 20 + rng.gen_range(120);
        let script = random_script(&mut rng, statements);
        assert_batch_matches(&Detector::default(), &script, &format!("case {case} full"));
        assert_batch_matches(
            &Detector::new(DetectionConfig::intra_only()),
            &script,
            &format!("case {case} intra"),
        );
    }
}

/// Randomly edit some statements of a script (one per line), producing
/// texts the original never contained. DDL lines are left alone so the
/// schema — and with it the cache epoch — stays stable; the dedicated
/// test below covers schema-changing edits.
fn edit_lines(script: &str, rng: &mut SmallRng) -> String {
    let mut out = String::new();
    for (i, line) in script.lines().enumerate() {
        let ddl = line.starts_with("CREATE") || line.starts_with("ALTER");
        if !line.is_empty() && !ddl && rng.gen_range(10) == 0 {
            out.push_str(&format!("SELECT * FROM tab0 WHERE id = {};\n", 7_000_000 + i));
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Cold sequential reference: legacy front-end (per-statement parse, no
/// sharing) + per-statement detection.
fn cold_reference(det: &Detector, script: &str) -> Vec<String> {
    let ctx = ContextBuilder::new()
        .with_frontend(FrontendOptions::legacy())
        .add_script(script)
        .build();
    detections_debug(&det.detect(&ctx))
}

/// Property (satellite of the parse-once PR): parse-dedup plus a cached
/// re-check must stay byte-identical to a cold sequential `check_script`
/// on randomized duplicate-heavy scripts — across edits, thread counts,
/// and detector-config switches (which must flush the cache, not poison
/// it).
#[test]
fn cached_recheck_is_byte_identical_to_cold_sequential() {
    let mut rng = SmallRng::new(0x1AC);
    for case in 0..12 {
        let statements = 40 + rng.gen_range(120);
        let script = random_script(&mut rng, statements);
        let edited = edit_lines(&script, &mut rng);
        let det = Detector::default();
        let cache = IncrementalCache::new(4096);

        for (round, (sql, label)) in
            [(&script, "cold"), (&edited, "edited"), (&script, "back")].iter().enumerate()
        {
            let opts = BatchOptions { parallel: true, threads: Some(1 + round % 3), ..BatchOptions::default() };
            let ctx = ContextBuilder::new().add_script(sql).build();
            let got =
                detections_debug(&det.detect_batch_with(&ctx, &opts, Some(&cache)).report);
            assert_eq!(
                cold_reference(&det, sql),
                got,
                "case {case} round {round} ({label}): cached batch must equal cold sequential"
            );
        }
        // Rounds 2 and 3 revisit texts the cache has seen: hits required.
        let c = cache.counters();
        assert!(c.hits > 0, "case {case}: warm rounds must hit the cache");

        // A config switch invalidates the epoch; results must follow the
        // new config, not the cached one.
        let intra = Detector::new(DetectionConfig::intra_only());
        let ctx = ContextBuilder::new().add_script(&edited).build();
        let got = detections_debug(
            &intra.detect_batch_with(&ctx, &BatchOptions::default(), Some(&cache)).report,
        );
        assert_eq!(
            cold_reference(&intra, &edited),
            got,
            "case {case}: config switch must flush, not replay stale entries"
        );
        assert!(cache.counters().evictions > 0, "case {case}: epoch flush counted");
    }
}

/// DDL edits change the schema context, which contextual intra rules
/// depend on — the cache must flush (epoch change) and re-detect.
#[test]
fn schema_edit_invalidates_cached_suppressions() {
    // `tab` has no PK: No Primary Key fires on the CREATE; adding an
    // ALTER later suppresses it. The SELECT's detections are cacheable
    // either way, but the suppression decision depends on the schema.
    let v1 = "CREATE TABLE tab (a INT);\nSELECT * FROM tab WHERE a = 1;\n";
    let v2 = "CREATE TABLE tab (a INT);\nALTER TABLE tab ADD CONSTRAINT pk PRIMARY KEY (a);\nSELECT * FROM tab WHERE a = 1;\n";
    let det = Detector::default();
    let cache = IncrementalCache::new(64);
    for sql in [v1, v2, v1] {
        let ctx = ContextBuilder::new().add_script(sql).build();
        let got = detections_debug(
            &det.detect_batch_with(&ctx, &BatchOptions::default(), Some(&cache)).report,
        );
        assert_eq!(cold_reference(&det, sql), got, "schema change must invalidate");
    }
}

/// A small database over the `tab{i}` tables the random scripts use, so
/// the data-analysis phase has profiles to inspect.
fn sample_database(rng: &mut SmallRng) -> sqlcheck_minidb::database::Database {
    use sqlcheck_minidb::prelude::*;
    let mut db = Database::new();
    for i in 0..(2 + rng.gen_range(3)) {
        let name = format!("dbt{i}");
        db.create_table(
            TableSchema::new(&name)
                .column(Column::new("id", DataType::Int).not_null())
                .column(Column::new("role", DataType::Text))
                .column(Column::new("price", DataType::Float))
                .primary_key(&["id"]),
        )
        .unwrap();
        for r in 0..40 {
            db.insert(
                &name,
                vec![
                    Value::Int(r),
                    Value::text(format!("R{}", r % 3)),
                    Value::Float(r as f64 * 0.5),
                ],
            )
            .unwrap();
        }
    }
    db
}

/// Three-phase property (tentpole of the phase-slicing PR): with the
/// inter-query and data-analysis phases sliced onto the worker pool, the
/// batch path must stay byte-identical to the sequential path across
/// thread counts — **with a database attached**, so all three phases do
/// real work (the tests above never exercise the data phase).
#[test]
fn inter_and_data_phases_identical_across_thread_counts() {
    use sqlcheck::DataAnalysisConfig;
    let mut rng = SmallRng::new(0x3F4A5E);
    for case in 0..12 {
        let n = 30 + rng.gen_range(90);
        let script = random_script(&mut rng, n);
        let db = sample_database(&mut rng);
        let ctx = ContextBuilder::new()
            .add_script(&script)
            .with_database(db, DataAnalysisConfig::default())
            .build();
        assert!(ctx.has_data(), "case {case}: data phase must be live");
        let det = Detector::default();
        let seq = det.detect(&ctx);
        assert!(
            seq.detections
                .iter()
                .any(|d| d.source == sqlcheck::DetectionSource::DataAnalysis),
            "case {case}: data rules must fire"
        );
        assert!(
            seq.detections
                .iter()
                .any(|d| d.source == sqlcheck::DetectionSource::InterQuery),
            "case {case}: inter rules must fire"
        );
        let seq_key = detections_debug(&seq);
        for threads in [1usize, 2, 3, 8] {
            let opts = BatchOptions { parallel: true, threads: Some(threads), ..BatchOptions::default() };
            let batch = det.detect_batch(&ctx, &opts);
            assert_eq!(
                seq_key,
                detections_debug(&batch.report),
                "case {case}/{threads} threads: three-phase batch must equal sequential"
            );
        }
    }
}

/// Per-table invalidation safety: across random DDL edits — add a
/// column, add an index, drop a table — a cached re-check must never
/// serve a stale result. Compared against a cold legacy-front-end check
/// on every round.
#[test]
fn per_table_invalidation_never_serves_stale_results() {
    let mut rng = SmallRng::new(0x7AB1E);
    for case in 0..10 {
        let n = 40 + rng.gen_range(80);
        let base = random_script(&mut rng, n);
        let det = Detector::default();
        let cache = IncrementalCache::new(4096);
        let mut script = base.clone();
        for round in 0..5 {
            // Random DDL mutation of one table per round (the statement
            // stream is untouched, so unrelated entries could survive).
            match rng.gen_range(4) {
                0 => script.push_str(&format!(
                    "ALTER TABLE tab0 ADD COLUMN extra{round} INT;\n"
                )),
                1 => script.push_str(&format!(
                    "CREATE INDEX ix{case}_{round} ON tab0 (b);\n"
                )),
                2 => script.push_str(&format!(
                    "CREATE TABLE fresh{case}_{round} (x INT);\n"
                )),
                _ => { /* no DDL change this round */ }
            }
            let ctx = ContextBuilder::new().add_script(&script).build();
            let got = detections_debug(
                &det.detect_batch_with(&ctx, &BatchOptions::default(), Some(&cache)).report,
            );
            assert_eq!(
                cold_reference(&det, &script),
                got,
                "case {case} round {round}: cached re-check after DDL edits must equal cold"
            );
        }
        assert!(cache.counters().hits > 0, "case {case}: re-checks must hit the cache");
    }
}

/// Per-table invalidation effectiveness: a DDL edit to one table keeps
/// every entry that only depends on other tables (hits), while entries on
/// the edited table re-analyse (misses) — and a content-identical schema
/// keeps the whole cache warm.
#[test]
fn ddl_edit_to_one_table_keeps_unrelated_entries() {
    let ddl = "CREATE TABLE hot (id INT PRIMARY KEY, v TEXT);\n\
               CREATE TABLE cold1 (id INT PRIMARY KEY, v TEXT);\n\
               CREATE TABLE cold2 (id INT PRIMARY KEY, v TEXT);\n";
    let mut body = String::new();
    for i in 0..30 {
        body.push_str(&format!("SELECT * FROM cold1 WHERE id = {i};\n"));
        body.push_str(&format!("SELECT * FROM cold2 WHERE id = {i};\n"));
        body.push_str(&format!("SELECT * FROM hot WHERE id = {i};\n"));
    }
    let script = format!("{ddl}{body}");
    let edited = script.replace(
        "CREATE TABLE hot (id INT PRIMARY KEY, v TEXT);",
        "CREATE TABLE hot (id INT PRIMARY KEY, v TEXT, w INT);",
    );
    let det = Detector::default();
    let cache = IncrementalCache::new(4096);

    // Prime, then a no-op re-check: identical schema must keep the cache
    // fully warm (every unique text hits; zero evictions).
    let ctx = ContextBuilder::new().add_script(&script).build();
    let first = det.detect_batch_with(&ctx, &BatchOptions::default(), Some(&cache));
    assert_eq!(first.stats.incremental_hits, 0);
    let ctx2 = ContextBuilder::new().add_script(&script).build();
    let warm = det.detect_batch_with(&ctx2, &BatchOptions::default(), Some(&cache));
    assert_eq!(
        warm.stats.incremental_misses, 0,
        "content-identical schema reload must not flush the cache"
    );
    assert_eq!(warm.stats.incremental_evictions, 0);
    assert!(warm.stats.incremental_hits > 0);

    // ADD COLUMN to `hot`: with column-granular dependency tracking,
    // even the entries on `hot` survive — they only read `hot.id`,
    // whose digest (and the table core) the edit leaves unchanged. Only
    // the edited DDL text itself is new work.
    let ctx3 = ContextBuilder::new().add_script(&edited).build();
    let after = det.detect_batch_with(&ctx3, &BatchOptions::default(), Some(&cache));
    assert_eq!(
        detections_debug(&after.report),
        cold_reference(&det, &edited),
        "output after DDL edit must match a cold check"
    );
    assert!(
        after.stats.incremental_hits >= 90,
        "ADD COLUMN must keep entries on untouched columns warm (even on the edited table), got {} hits",
        after.stats.incremental_hits
    );
    assert!(
        after.stats.incremental_misses <= 2,
        "only the edited DDL text re-analyses, got {} misses",
        after.stats.incremental_misses
    );
    assert!(
        after.stats.table_evictions >= 1,
        "the old CREATE TABLE entry (whole-table dep) must drop"
    );

    // Edit the column the statements actually read (`hot.id` changes
    // type): now the `hot` entries are stale and must re-analyse, while
    // cold1/cold2 still survive.
    let retyped = edited.replace(
        "CREATE TABLE hot (id INT PRIMARY KEY, v TEXT, w INT);",
        "CREATE TABLE hot (id BIGINT PRIMARY KEY, v TEXT, w INT);",
    );
    let ctx4 = ContextBuilder::new().add_script(&retyped).build();
    let after2 = det.detect_batch_with(&ctx4, &BatchOptions::default(), Some(&cache));
    assert_eq!(
        detections_debug(&after2.report),
        cold_reference(&det, &retyped),
        "output after column-type edit must match a cold check"
    );
    assert!(
        after2.stats.incremental_hits >= 60,
        "entries on unedited tables must survive, got {} hits",
        after2.stats.incremental_hits
    );
    assert!(
        after2.stats.incremental_misses >= 30,
        "entries reading the edited column must be invalidated, got {} misses",
        after2.stats.incremental_misses
    );
    assert!(
        after2.stats.column_evictions >= 30,
        "column-dep evictions must be classified, got {}",
        after2.stats.column_evictions
    );
}

/// Duplicate-template-heavy scripts must actually exercise the dedup
/// cache (the property above would pass vacuously on all-unique scripts).
#[test]
fn random_scripts_contain_duplicates() {
    let mut rng = SmallRng::new(0xD0D0);
    let script = random_script(&mut rng, 200);
    let ctx = ContextBuilder::new().add_script(&script).build();
    let b = Detector::default().detect_batch(&ctx, &BatchOptions::default());
    assert!(
        b.stats.cache_hits > 50,
        "expected heavy duplication, got {} hits over {} statements",
        b.stats.cache_hits,
        b.stats.statements
    );
    assert!(b.stats.unique_templates < b.stats.unique_texts, "literal variants must fold");
}
