//! Regression tests for per-occurrence source spans (headline bugfix of
//! the three-phase-pipeline PR).
//!
//! The parse-once front-end shares one parse tree across duplicate
//! statement texts, so the *tokens* of a duplicate carry the first
//! occurrence's byte offsets. Detections and fixes must nevertheless
//! point at **their own** occurrence: `ContextBuilder` keeps a
//! per-occurrence span side table and the detection fan-out stamps every
//! statement-locus detection with its occurrence's span.

use sqlcheck::{
    BatchOptions, ContextBuilder, Detector, Locus, SqlCheck,
};
use std::sync::Arc;

/// The same bad statement twice, at different offsets, with distinct
/// statements around it.
const SCRIPT: &str = "CREATE TABLE t (a INT PRIMARY KEY, b TEXT);\n\
                      SELECT * FROM t WHERE b = 'x';\n\
                      INSERT INTO t (a, b) VALUES (1, 'y');\n\
                      SELECT * FROM t WHERE b = 'x';\n";

fn occurrence_texts(script: &str) -> Vec<(usize, usize)> {
    // Byte ranges of the two duplicate SELECTs in SCRIPT.
    let needle = "SELECT * FROM t WHERE b = 'x'";
    let first = script.find(needle).expect("first occurrence");
    let second = script[first + 1..].find(needle).expect("second occurrence") + first + 1;
    vec![(first, first + needle.len()), (second, second + needle.len())]
}

#[test]
fn duplicate_statements_share_tree_but_not_spans() {
    let ctx = ContextBuilder::new().add_script(SCRIPT).build();
    assert_eq!(ctx.len(), 4);
    let (s1, s3) = (&ctx.statements[1], &ctx.statements[3]);
    assert!(Arc::ptr_eq(&s1.parsed, &s3.parsed), "duplicates share the parse tree");
    assert_ne!(s1.span, s3.span, "each occurrence keeps its own span");
    let occ = occurrence_texts(SCRIPT);
    assert_eq!((s1.span.start, s1.span.end), occ[0]);
    assert_eq!((s3.span.start, s3.span.end), occ[1]);
}

#[test]
fn detections_on_duplicates_carry_their_own_occurrence_span() {
    let occ = occurrence_texts(SCRIPT);
    let ctx = ContextBuilder::new().add_script(SCRIPT).build();
    let det = Detector::default();
    for (label, report) in [
        ("sequential", det.detect(&ctx)),
        ("batch", det.detect_batch(&ctx, &BatchOptions::default()).report),
        ("batch-seq", det.detect_batch(&ctx, &BatchOptions::sequential()).report),
    ] {
        let mut seen = [false, false];
        for d in &report.detections {
            let Locus::Statement { index } = d.locus else { continue };
            let span = d.span.unwrap_or_else(|| panic!("{label}: statement detection has a span"));
            // Every statement-locus detection points inside its own
            // statement's source range.
            let stmt_span = ctx.statements[index].span;
            assert_eq!(span, stmt_span, "{label}: detection span is the occurrence's span");
            if index == 1 {
                assert_eq!((span.start, span.end), occ[0], "{label}: first occurrence");
                seen[0] = true;
            }
            if index == 3 {
                assert_eq!((span.start, span.end), occ[1], "{label}: second occurrence");
                seen[1] = true;
            }
        }
        assert!(seen[0] && seen[1], "{label}: both duplicate occurrences must be flagged");
    }
}

#[test]
fn fixes_for_duplicates_point_at_their_own_location() {
    let occ = occurrence_texts(SCRIPT);
    let tool = SqlCheck::new();
    let w = tool.check_workload(SCRIPT, &BatchOptions::default());
    let spans: Vec<(usize, usize)> = w
        .outcome
        .fixes()
        .iter()
        .filter(|f| matches!(f.detection.locus, Locus::Statement { index: 1 | 3 }))
        .filter_map(|f| f.detection.span.map(|s| (s.start, s.end)))
        .collect();
    assert!(
        spans.contains(&occ[0]) && spans.contains(&occ[1]),
        "fixes must anchor at both occurrences, got {spans:?}"
    );
    // The slice of the script at each fix's span is the statement the
    // fix rewrites — the span is usable for in-place patching.
    for f in w.outcome.fixes() {
        if let (Some(span), sqlcheck::Fix::Rewrite { original, .. }) = (f.detection.span, &f.fix) {
            assert_eq!(&SCRIPT[span.start..span.end], original.trim_end_matches('\n'));
        }
    }
}

#[test]
fn cached_rechecks_preserve_per_occurrence_spans() {
    // Round 1 populates the cache; round 2 replays it. The replayed
    // detections must carry round-2 occurrence spans, not canonical or
    // first-occurrence ones.
    let tool = SqlCheck::new().with_cache(1024);
    let cold = tool.check_workload(SCRIPT, &BatchOptions::default());
    let warm = tool.check_workload(SCRIPT, &BatchOptions::default());
    assert!(warm.stats.incremental_hits > 0, "second round must hit the cache");
    let key = |o: &sqlcheck::CheckOutcome| {
        o.report.detections.iter().map(|d| format!("{d:?}")).collect::<Vec<_>>()
    };
    assert_eq!(key(&cold.outcome), key(&warm.outcome), "cached replay is byte-identical");
}
