//! End-to-end pipeline tests for compound statements: `BEGIN…END`
//! trigger/procedure bodies, dollar-quoted PL/pgSQL function bodies, and
//! MySQL dump `DELIMITER` blocks must survive split → parse → annotate →
//! detect → span reporting through `SqlCheck::check_workload`, with
//! per-table incremental-cache invalidation reaching into body-referenced
//! tables.

use sqlcheck::{AntiPatternKind, BatchOptions, ContextBuilder, Detector, Locus, SqlCheck};
use sqlcheck_parser::ast::Statement;

/// The ISSUE 5 acceptance repro.
const REPRO: &str = "CREATE TRIGGER trg AFTER INSERT ON t FOR EACH ROW \
                     BEGIN UPDATE u SET a = 1; DELETE FROM v; END; SELECT 1;";

#[test]
fn repro_splits_parses_and_annotates() {
    let ctx = ContextBuilder::new().add_script(REPRO).build();
    assert_eq!(ctx.len(), 2, "trigger + SELECT — body semicolons must not split");
    let trigger = &ctx.statements[0];
    let Statement::CreateTrigger(tg) = &trigger.parsed.stmt else {
        panic!("expected a real CreateTrigger node, got {:?}", trigger.parsed.stmt);
    };
    assert_eq!(tg.body.len(), 2);
    // Body-referenced tables surface in the annotations (cache deps).
    assert!(trigger.ann.tables.iter().any(|t| t == "u"));
    assert!(trigger.ann.tables.iter().any(|t| t == "v"));
}

#[test]
fn body_detections_point_into_the_body() {
    // A trigger body with two detectable sub-statements: an implicit-
    // columns INSERT and a SELECT * — both anti-patterns *inside* the
    // body, reported at the trigger's locus with spans into the body.
    let script = "CREATE TRIGGER audit AFTER UPDATE ON t FOR EACH ROW BEGIN \
                  INSERT INTO log VALUES (1); \
                  SELECT * FROM audit_rows ORDER BY RAND(); \
                  END;\nSELECT 2;";
    let ctx = ContextBuilder::new().add_script(script).build();
    let det = Detector::default();
    let seq = det.detect(&ctx);
    // Byte-identity across all paths is preserved with body fan-out.
    for opts in [BatchOptions::sequential(), BatchOptions::default()] {
        let batch = det.detect_batch(&ctx, &opts);
        let fmt = |r: &sqlcheck::Report| {
            r.detections.iter().map(|d| format!("{d:?}")).collect::<Vec<_>>()
        };
        assert_eq!(fmt(&seq), fmt(&batch.report));
    }
    let find = |kind: AntiPatternKind| {
        seq.detections
            .iter()
            .find(|d| d.kind == kind && matches!(d.locus, Locus::Statement { index: 0 }))
            .unwrap_or_else(|| panic!("{kind:?} must be detected inside the trigger body"))
    };
    let implicit = find(AntiPatternKind::ImplicitColumns);
    let span = implicit.span.expect("body detection has a span");
    assert_eq!(&script[span.start..span.end], "INSERT INTO log VALUES (1)");
    let wildcard = find(AntiPatternKind::ColumnWildcard);
    let span = wildcard.span.expect("body detection has a span");
    assert_eq!(&script[span.start..span.end], "SELECT * FROM audit_rows ORDER BY RAND()");
    assert!(seq.detections.iter().any(|d| d.kind == AntiPatternKind::OrderingByRand));
}

#[test]
fn constructs_inside_bodies_are_still_detected() {
    // Statements guarded by IF/WHILE constructs are executable body
    // statements: the construct header is stripped at parse time, so the
    // rules see the SELECT/INSERT behind it.
    let script = "CREATE TRIGGER trg AFTER INSERT ON t FOR EACH ROW BEGIN \
                  IF NEW.a > 0 THEN SELECT * FROM big ORDER BY RAND(); END IF; \
                  WHILE NEW.b > 0 DO INSERT INTO log VALUES (1); END WHILE; \
                  END;";
    let ctx = ContextBuilder::new().add_script(script).build();
    let report = Detector::default().detect(&ctx);
    let kinds: Vec<AntiPatternKind> = report.detections.iter().map(|d| d.kind).collect();
    assert!(kinds.contains(&AntiPatternKind::ColumnWildcard), "{kinds:?}");
    assert!(kinds.contains(&AntiPatternKind::OrderingByRand), "{kinds:?}");
    assert!(kinds.contains(&AntiPatternKind::ImplicitColumns), "{kinds:?}");
    let wc = report
        .detections
        .iter()
        .find(|d| d.kind == AntiPatternKind::ColumnWildcard)
        .and_then(|d| d.span)
        .expect("span");
    assert_eq!(&script[wc.start..wc.end], "SELECT * FROM big ORDER BY RAND()");
}

#[test]
fn dollar_quoted_function_body_e2e() {
    // Lexer handled $tag$…$tag$ before; this pins the whole pipeline:
    // split → parse → detect → span reporting through check_workload.
    let script = "CREATE FUNCTION sweep() RETURNS trigger AS $fn$\n\
                  BEGIN\n\
                    DELETE FROM stale;\n\
                    SELECT * FROM counters;\n\
                  END\n\
                  $fn$ LANGUAGE plpgsql;\n\
                  SELECT name FROM t WHERE id = 1;";
    let tool = SqlCheck::new();
    let w = tool.check_workload(script, &BatchOptions::default());
    assert_eq!(w.stats.statements, 2);
    let ctx = &w.outcome.context;
    let Statement::CreateRoutine(r) = &ctx.statements[0].parsed.stmt else {
        panic!("expected CreateRoutine, got {:?}", ctx.statements[0].parsed.stmt);
    };
    assert_eq!(r.body.len(), 2);
    assert!(ctx.statements[0].ann.tables.iter().any(|t| t == "stale"));
    assert!(ctx.statements[0].ann.tables.iter().any(|t| t == "counters"));
    // The wildcard inside the dollar-quoted body is detected, and its
    // span slices the original script at the body sub-statement.
    let d = w
        .outcome
        .report
        .detections
        .iter()
        .find(|d| {
            d.kind == AntiPatternKind::ColumnWildcard
                && matches!(d.locus, Locus::Statement { index: 0 })
        })
        .expect("wildcard inside the dollar-quoted body");
    let span = d.span.expect("span attached");
    assert_eq!(&script[span.start..span.end], "SELECT * FROM counters");
}

#[test]
fn mysqldump_delimiter_block_e2e() {
    let script = "DELIMITER ;;\n\
                  CREATE TRIGGER bump BEFORE INSERT ON t FOR EACH ROW\n\
                  BEGIN\n\
                    UPDATE counters SET n = n + 1;\n\
                  END ;;\n\
                  DELIMITER ;\n\
                  SELECT * FROM t;";
    let tool = SqlCheck::new();
    let w = tool.check_workload(script, &BatchOptions::default());
    assert_eq!(w.stats.statements, 2, "directive lines are not statements");
    assert!(matches!(w.outcome.context.statements[0].parsed.stmt, Statement::CreateTrigger(_)));
    assert!(w
        .outcome
        .report
        .detections
        .iter()
        .any(|d| d.kind == AntiPatternKind::ColumnWildcard));
}

/// Script with a trigger whose body touches `v`, plus unrelated texts.
fn cache_script(v_extra_col: bool) -> String {
    let v_ddl = if v_extra_col {
        "CREATE TABLE v (a INT PRIMARY KEY, b INT);"
    } else {
        "CREATE TABLE v (a INT PRIMARY KEY);"
    };
    format!(
        "{v_ddl}\n{REPRO}\nSELECT name FROM unrelated WHERE id = 1;"
    )
}

#[test]
fn ddl_edit_to_body_referenced_table_evicts_trigger_entry() {
    let tool = SqlCheck::new().with_cache(1024);
    let cold = tool.check_workload(&cache_script(false), &BatchOptions::default());
    assert_eq!(cold.stats.incremental_misses, 4, "all unique texts analysed cold");

    // Unchanged script: everything replays from the cache.
    let warm = tool.check_workload(&cache_script(false), &BatchOptions::default());
    assert_eq!(warm.stats.incremental_hits, 4);
    assert_eq!(warm.stats.incremental_misses, 0);

    // ADD COLUMN to `v` — a table referenced only from the trigger
    // BODY — leaves the trigger entry warm under column-granular deps:
    // the body reads neither `v`'s core nor the new column, and the
    // detections of `DELETE FROM v` cannot change. Only the edited DDL
    // text itself is new work.
    let edited = tool.check_workload(&cache_script(true), &BatchOptions::default());
    assert_eq!(
        edited.stats.incremental_misses, 1,
        "only the edited v-DDL text re-analyses"
    );
    assert_eq!(edited.stats.incremental_hits, 3, "everything else stays warm");

    // Changing the type of `v.a` — a column the trigger body's deps
    // cover (cross product of body tables × referenced columns) — must
    // evict the trigger's cached entry, while texts not touching `v`
    // stay warm.
    let retyped = cache_script(true).replace(
        "CREATE TABLE v (a INT PRIMARY KEY, b INT);",
        "CREATE TABLE v (a BIGINT PRIMARY KEY, b INT);",
    );
    let after = tool.check_workload(&retyped, &BatchOptions::default());
    assert_eq!(
        after.stats.incremental_misses, 2,
        "edited v-DDL text + invalidated trigger entry re-analysed"
    );
    assert_eq!(after.stats.incremental_hits, 2, "SELECTs not touching v stay warm");
    assert!(after.stats.column_evictions >= 1, "trigger eviction is column-classified");
}

#[test]
fn cached_compound_rechecks_stay_byte_identical() {
    let script = "CREATE TRIGGER audit AFTER UPDATE ON t FOR EACH ROW BEGIN \
                  INSERT INTO log VALUES (1); SELECT * FROM x; END;\n\
                  SELECT 2;\n\
                  CREATE TRIGGER audit AFTER UPDATE ON t FOR EACH ROW BEGIN \
                  INSERT INTO log VALUES (1); SELECT * FROM x; END;";
    let tool = SqlCheck::new().with_cache(64);
    let cold = tool.check_workload(script, &BatchOptions::default());
    let warm = tool.check_workload(script, &BatchOptions::default());
    assert!(warm.stats.incremental_hits > 0);
    let fmt = |o: &sqlcheck::CheckOutcome| {
        o.report.detections.iter().map(|d| format!("{d:?}")).collect::<Vec<_>>()
    };
    assert_eq!(fmt(&cold.outcome), fmt(&warm.outcome));
    // Duplicate trigger occurrences: each body detection must carry its
    // own occurrence's absolute span.
    let spans: Vec<_> = warm
        .outcome
        .report
        .detections
        .iter()
        .filter(|d| d.kind == AntiPatternKind::ColumnWildcard)
        .filter_map(|d| d.span)
        .collect();
    assert_eq!(spans.len(), 2, "one wildcard per trigger occurrence");
    assert_ne!(spans[0], spans[1], "each occurrence points at its own body");
    for s in spans {
        assert_eq!(&script[s.start..s.end], "SELECT * FROM x");
    }
}
