//! End-to-end dialect properties (ISSUE 10).
//!
//! 1. **Generic identity**: threading `Dialect::Generic` explicitly
//!    through the pipeline — tool-level or `BatchOptions`-level — must be
//!    byte-identical to the pre-dialect default entry points, across
//!    thread counts and cache on/off.
//! 2. **Detection**: with no explicit dialect, `check_workload` guesses
//!    from the script and says so (`DiagKind::DialectGuessed`); an
//!    explicit dialect suppresses both the guess and the diagnostic.
//! 3. **Cache epoch**: the resolved dialect folds into the incremental
//!    cache's config epoch, so switching dialects on a shared cache never
//!    replays results computed under another dialect's grammar.
//! 4. **Cold reverts** (PR 9 remainder): a re-check whose dirty fraction
//!    exceeds ~10% self-selects a cold rebuild, counted as
//!    `cold_reverts` — not as a correctness `fallback` — and still
//!    matches a cold check byte-for-byte.

use sqlcheck::{BatchOptions, DiagKind, Dialect, Edit, SqlCheck, WorkloadOutcome};

/// Render every outcome surface; equality here is the byte-identity bar.
fn fingerprint(w: &WorkloadOutcome) -> String {
    let o = &w.outcome;
    let mut s = String::new();
    for d in &o.report.detections {
        s.push_str(&format!("{d:?}\n"));
    }
    for r in o.ranked() {
        s.push_str(&format!("{:.6} {:?}\n", r.score, r.detection));
    }
    for f in o.fixes() {
        s.push_str(&format!("{f:?}\n"));
    }
    for d in &o.diagnostics {
        s.push_str(&format!("{d:?}\n"));
    }
    s
}

/// A dialect-neutral script that still stresses splitter state: compound
/// bodies, dollar quotes, string decoys, duplicates.
fn neutral_script() -> String {
    let mut s = String::from(
        "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(64), bio TEXT);\n\
         CREATE TABLE orders (id INT, user_id INT, total FLOAT);\n\
         CREATE TRIGGER trg AFTER INSERT ON orders FOR EACH ROW \
         BEGIN UPDATE users SET bio = 'n;ew'; DELETE FROM orders; END;\n\
         INSERT INTO users VALUES (1, $tag$v;1$tag$, 'b');\n",
    );
    for i in 0..30 {
        s.push_str(&format!("SELECT name FROM users WHERE id = {};\n", i % 7));
        s.push_str("SELECT * FROM orders WHERE total > 10 ORDER BY RANDOM();\n");
    }
    s
}

/// A small mysqldump-style script (the full-size generator lives in
/// `sqlcheck-workload`, which depends on this crate — so the test keeps
/// its own miniature): `#` comments, backticked identifiers, and a
/// `DELIMITER $$` routine section.
fn mysqldump_script() -> String {
    let mut s = String::from("# Host: localhost    Database: app\n");
    for t in 0..4 {
        s.push_str(&format!("# Dump of table `tbl_{t}`\n"));
        s.push_str(&format!(
            "CREATE TABLE `tbl_{t}` (`id` INTEGER, `name` VARCHAR(64), PRIMARY KEY (`id`));\n"
        ));
        for i in 0..10 {
            s.push_str(&format!(
                "INSERT INTO `tbl_{t}` (`id`, `name`) VALUES ({i}, 'n{i}');\n"
            ));
            s.push_str(&format!(
                "SELECT `id` FROM `tbl_{t}` WHERE `name` REGEXP '^n' LIMIT {};\n",
                10 + i
            ));
        }
    }
    s.push_str(
        "DELIMITER $$\n\
         CREATE TRIGGER `trg` BEFORE INSERT ON `tbl_0` FOR EACH ROW \
         BEGIN UPDATE `tbl_0` SET `name` = 'x'; END$$\n\
         DELIMITER ;\n",
    );
    s
}

/// Explicit `Dialect::Generic` — at either layer — is byte-identical to
/// the undialected default, across thread counts and cache on/off.
#[test]
fn explicit_generic_equals_the_undialected_default() {
    let script = neutral_script();
    for &threads in &[1usize, 2, 4] {
        for &cached in &[false, true] {
            let opts = BatchOptions { threads: Some(threads), ..BatchOptions::default() };
            let mk = || if cached { SqlCheck::new().with_cache(1024) } else { SqlCheck::new() };

            let base = mk().check_workload(&script, &opts);
            let tool_level = mk()
                .with_dialect(Dialect::Generic)
                .with_dialect_detection(false)
                .check_workload(&script, &opts);
            let opts_level = mk().check_workload(
                &script,
                &BatchOptions { dialect: Dialect::Generic, ..opts.clone() },
            );

            assert_eq!(base.outcome.context.dialect, Dialect::Generic);
            assert_eq!(
                fingerprint(&base),
                fingerprint(&tool_level),
                "threads={threads} cached={cached}: tool-level Generic diverged"
            );
            assert_eq!(
                fingerprint(&base),
                fingerprint(&opts_level),
                "threads={threads} cached={cached}: opts-level Generic diverged"
            );
        }
    }
}

/// No explicit dialect + detection on: the guess is recorded in the
/// context and announced via `DialectGuessed`. An explicit dialect
/// suppresses both.
#[test]
fn detection_guesses_and_explicit_dialect_suppresses() {
    let script = mysqldump_script();
    let opts = BatchOptions { detect_dialect: true, ..BatchOptions::default() };
    let guessed = SqlCheck::new().check_workload(&script, &opts);
    assert_eq!(guessed.outcome.context.dialect, Dialect::MySql);
    assert_eq!(
        guessed
            .outcome
            .diagnostics
            .iter()
            .filter(|d| d.kind == DiagKind::DialectGuessed)
            .count(),
        1,
        "exactly one guess announcement: {:?}",
        guessed.outcome.diagnostics
    );

    let explicit = SqlCheck::new().check_workload(
        &script,
        &BatchOptions { dialect: Dialect::MySql, ..BatchOptions::default() },
    );
    assert_eq!(explicit.outcome.context.dialect, Dialect::MySql);
    assert!(
        explicit.outcome.diagnostics.iter().all(|d| d.kind != DiagKind::DialectGuessed),
        "explicit dialect must not announce a guess"
    );
}

/// Switching dialects over one shared cache must never replay entries
/// computed under another dialect's grammar: every run equals its own
/// cold (cache-free) reference.
#[test]
fn dialect_folds_into_the_cache_epoch() {
    let script = mysqldump_script();
    let tool = SqlCheck::new().with_cache(4096);
    for dialect in [Dialect::Generic, Dialect::MySql, Dialect::Generic, Dialect::Postgres] {
        let opts = BatchOptions { dialect, ..BatchOptions::default() };
        let cached = tool.check_workload(&script, &opts);
        let cold = SqlCheck::new().check_workload(&script, &opts);
        assert_eq!(
            fingerprint(&cached),
            fingerprint(&cold),
            "{dialect}: cached run must equal a cold run under the same dialect"
        );
        assert_eq!(cached.outcome.context.dialect, dialect);
    }
}

/// Cost-aware warm re-check: a small edit stays warm (no revert), a bulk
/// edit above ~10% dirty self-selects the cold rebuild — counted as a
/// `cold_revert`, not a `fallback` — and both match cold byte-for-byte.
#[test]
fn bulk_edits_revert_to_cold_and_are_counted_separately() {
    let opts = BatchOptions::default();
    let script = neutral_script();
    let mut session = SqlCheck::new().into_session(script, opts.clone());
    let n = session.outcome().stats.statements;
    assert!(n > 40, "need a workload big enough to make 10% meaningful");

    // One edited statement out of ~64: far under the revert threshold.
    session.recheck(&[Edit::new(4, "SELECT bio FROM users WHERE id = 9")]);
    assert_eq!(session.cold_reverts(), 0, "small edits stay warm");
    assert_eq!(session.fallbacks(), 0);
    let cold = SqlCheck::new().check_workload(session.script(), &opts);
    assert_eq!(fingerprint(session.outcome()), fingerprint(&cold), "warm path identity");

    // Bulk round: rewrite a quarter of the statements in one batch.
    let edits: Vec<Edit> = (0..n / 4)
        .map(|i| Edit::new(4 + i, format!("SELECT name FROM users WHERE id = {}", 9000 + i)))
        .collect();
    session.recheck(&edits);
    assert_eq!(session.cold_reverts(), 1, "bulk edit must self-select the cold rebuild");
    assert_eq!(session.fallbacks(), 0, "a cost revert is not a correctness fallback");
    let cold = SqlCheck::new().check_workload(session.script(), &opts);
    assert_eq!(fingerprint(session.outcome()), fingerprint(&cold), "revert path identity");

    // The session stays usable after a revert: the next small edit is
    // warm again.
    session.recheck(&[Edit::new(6, "SELECT id FROM orders")]);
    assert_eq!(session.cold_reverts(), 1);
    assert_eq!(session.fallbacks(), 0);
    let cold = SqlCheck::new().check_workload(session.script(), &opts);
    assert_eq!(fingerprint(session.outcome()), fingerprint(&cold), "post-revert identity");
}
