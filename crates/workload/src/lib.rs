//! # sqlcheck-workload
//!
//! Seeded, labelled evaluation workloads reproducing the SQLCheck paper's
//! experimental inputs:
//!
//! * [`github`] — the 1406-repository embedded-SQL corpus of §8.1, with
//!   ground-truth labels so precision/recall (Table 2) is computable;
//! * [`globaleaks`] — the GlobaLeaks application of §2.1/§8.2: AP-laden
//!   and refactored database variants plus the paper's query tasks
//!   (Fig 3) and its SQL trace;
//! * [`kaggle`] — the 31 Kaggle databases of Table 6 for data-analysis-
//!   only detection (Table 5);
//! * [`django`] — the 15 Django applications of Table 7 (Table 4);
//! * [`user_study`] — the 23-participant study of §8.3;
//! * [`dialects`] — dialect-tagged synthetic corpora (mysqldump-style
//!   and PL/pgSQL-heavy) for the per-dialect parse-coverage rows of the
//!   acceptance matrix.
//!
//! Every generator is deterministic given its seed, so experiment output
//! is reproducible run-to-run.

#![warn(missing_docs)]

pub mod dialects;
pub mod django;
pub mod github;
pub mod globaleaks;
pub mod kaggle;
pub mod user_study;
