//! Dialect-tagged synthetic corpora for the acceptance matrix.
//!
//! The four paper corpora ([`crate::github`], [`crate::django`], …) are
//! dialect-neutral by construction: they exercise the anti-pattern rules,
//! not the front door's dialect surface. These two loaders fill that gap
//! with scripts that are *idiomatic* for one dialect and would previously
//! have collided with the tolerant-union front door:
//!
//! * [`mysqldump_script`] — a mysqldump-style export: `#` line comments,
//!   backtick-quoted identifiers, batched `INSERT`s, and `DELIMITER`
//!   sections (including the `$$` custom delimiter that collides with
//!   dollar-quoting unless the MySQL dialect is active);
//! * [`plpgsql_script`] — a PL/pgSQL-heavy schema: dollar-quoted function
//!   bodies with internal `;`, SQL-standard `BEGIN ATOMIC` routine
//!   bodies, `ILIKE`/`SIMILAR TO` predicates, and nested block comments.
//!
//! Both are deterministic given their seed, like every other loader in
//! this crate, so the per-dialect parse-coverage rows in
//! `BENCH_corpus.json` are reproducible run-to-run.

use sqlcheck_minidb::stats::SmallRng;
use std::fmt::Write as _;

/// Generation parameters for the dialect corpora.
#[derive(Debug, Clone, Copy)]
pub struct DialectCorpusConfig {
    /// Number of tables (each brings DDL, DML, and routine statements).
    pub tables: usize,
    /// Batched DML statements per table.
    pub statements_per_table: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for DialectCorpusConfig {
    fn default() -> Self {
        DialectCorpusConfig { tables: 40, statements_per_table: 30, seed: 0xD1A1EC7 }
    }
}

impl DialectCorpusConfig {
    /// A small configuration for tests and `--quick` CI runs.
    pub fn small() -> Self {
        DialectCorpusConfig { tables: 8, statements_per_table: 10, seed: 0xD1A1EC7 }
    }
}

const COLUMNS: &[(&str, &str)] = &[
    ("id", "INTEGER"),
    ("name", "VARCHAR(64)"),
    ("email", "VARCHAR(128)"),
    ("status", "VARCHAR(16)"),
    ("score", "FLOAT"),
    ("created_at", "TIMESTAMP"),
];

/// A mysqldump-style export script, idiomatic MySQL throughout.
///
/// Every table section carries `#` line comments, backticked identifiers,
/// and multi-row `INSERT`s; every few tables a `DELIMITER` section wraps
/// a trigger or procedure body, alternating the `;;` and `$$` custom
/// delimiters — `$$` being the spelling that collides with Postgres
/// dollar-quoting unless the splitter honours the MySQL dialect.
pub fn mysqldump_script(cfg: DialectCorpusConfig) -> String {
    let mut rng = SmallRng::new(cfg.seed);
    let mut out = String::new();
    out.push_str("# Host: localhost    Database: app\n");
    out.push_str("# ------------------------------------------------------\n\n");
    for t in 0..cfg.tables {
        let table = format!("tbl_{t}");
        let _ = writeln!(out, "# Dump of table `{table}`");
        let cols: Vec<String> = COLUMNS
            .iter()
            .map(|(name, ty)| format!("`{name}` {ty}"))
            .collect();
        let _ = writeln!(
            out,
            "CREATE TABLE `{table}` ({}, PRIMARY KEY (`id`));",
            cols.join(", ")
        );
        let _ = writeln!(out, "CREATE INDEX `idx_{table}_name` ON `{table}` (`name`);");
        for s in 0..cfg.statements_per_table {
            match rng.gen_range(4) {
                0 => {
                    // Batched insert, mysqldump's signature shape.
                    let rows: Vec<String> = (0..3)
                        .map(|r| {
                            format!(
                                "({}, 'n{r}', 'u{r}@x.io', 'ok', {}.5, CURRENT_TIMESTAMP)",
                                s * 3 + r,
                                rng.gen_range(90)
                            )
                        })
                        .collect();
                    let _ = writeln!(
                        out,
                        "INSERT INTO `{table}` (`id`, `name`, `email`, `status`, \
                         `score`, `created_at`) VALUES {};",
                        rows.join(", ")
                    );
                }
                1 => {
                    let _ = writeln!(
                        out,
                        "UPDATE `{table}` SET `status` = 'archived' WHERE `id` = {};",
                        rng.gen_range(1000)
                    );
                }
                2 => {
                    // REGEXP/RLIKE are MySQL's LIKE-family operators.
                    let op = if s % 2 == 0 { "REGEXP" } else { "RLIKE" };
                    let _ = writeln!(
                        out,
                        "SELECT `id`, `name` FROM `{table}` WHERE `email` {op} \
                         '^u[0-9]+' LIMIT {};",
                        10 + rng.gen_range(90)
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "DELETE FROM `{table}` WHERE `created_at` < '2020-01-0{}';",
                        1 + rng.gen_range(9)
                    );
                }
            }
        }
        // Every third table ships a routine behind a DELIMITER section,
        // alternating the two custom-delimiter spellings.
        if t % 3 == 0 {
            let delim = if t % 2 == 0 { "$$" } else { ";;" };
            let _ = writeln!(out, "DELIMITER {delim}");
            if t % 6 == 0 {
                let _ = writeln!(
                    out,
                    "CREATE TRIGGER `trg_{table}` BEFORE INSERT ON `{table}` \
                     FOR EACH ROW BEGIN UPDATE `{table}` SET `score` = 0; \
                     END{delim}"
                );
            } else {
                let _ = writeln!(
                    out,
                    "CREATE PROCEDURE `prune_{table}`() BEGIN \
                     DELETE FROM `{table}` WHERE `status` = 'archived'; \
                     SELECT `id` FROM `{table}` LIMIT 1; END{delim}"
                );
            }
            let _ = writeln!(out, "DELIMITER ;");
        }
        out.push('\n');
    }
    out
}

/// A PL/pgSQL-heavy schema + workload script, idiomatic Postgres.
///
/// Dollar-quoted routine bodies carry internal `;` (the case that forces
/// a dialect-aware splitter), `BEGIN ATOMIC` SQL-body routines exercise
/// the standard block opener, predicates use `ILIKE` and `SIMILAR TO`,
/// and setup comments nest.
pub fn plpgsql_script(cfg: DialectCorpusConfig) -> String {
    let mut rng = SmallRng::new(cfg.seed ^ 0x9E37);
    let mut out = String::new();
    out.push_str("/* schema bootstrap /* generated; do not edit */ v2 */\n\n");
    for t in 0..cfg.tables {
        let table = format!("rel_{t}");
        let cols: Vec<String> =
            COLUMNS.iter().map(|(name, ty)| format!("{name} {ty}")).collect();
        let _ = writeln!(
            out,
            "CREATE TABLE {table} ({}, PRIMARY KEY (id));",
            cols.join(", ")
        );
        let _ = writeln!(out, "CREATE INDEX idx_{table}_email ON {table} (email);");
        // A plpgsql trigger function: dollar-quoted body, several `;`.
        let _ = writeln!(
            out,
            "CREATE FUNCTION audit_{table}() RETURNS trigger AS $fn$ \
             BEGIN UPDATE {table} SET score = score + 1 WHERE id = 1; \
             DELETE FROM {table} WHERE status = 'stale'; RETURN ROW; END; \
             $fn$ LANGUAGE plpgsql;"
        );
        // A SQL-standard `BEGIN ATOMIC` body (Postgres 14+).
        let _ = writeln!(
            out,
            "CREATE FUNCTION prune_{table}() RETURNS INTEGER LANGUAGE SQL \
             BEGIN ATOMIC DELETE FROM {table} WHERE score < 0; \
             SELECT 1; END;"
        );
        for s in 0..cfg.statements_per_table {
            match rng.gen_range(4) {
                0 => {
                    let _ = writeln!(
                        out,
                        "INSERT INTO {table} (id, name, email, status, score, \
                         created_at) VALUES ({}, 'n{s}', 'u{s}@x.io', 'ok', \
                         {}.25, CURRENT_TIMESTAMP);",
                        s,
                        rng.gen_range(50)
                    );
                }
                1 => {
                    let op = if s % 2 == 0 { "ILIKE" } else { "SIMILAR TO" };
                    let _ = writeln!(
                        out,
                        "SELECT id, name FROM {table} WHERE email {op} \
                         '%@x.io' LIMIT {};",
                        5 + rng.gen_range(45)
                    );
                }
                2 => {
                    let _ = writeln!(
                        out,
                        "UPDATE {table} SET status = 'stale' WHERE \
                         created_at < '2021-0{}-01';",
                        1 + rng.gen_range(9)
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "DELETE FROM {table} WHERE id = {};",
                        rng.gen_range(5000)
                    );
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let cfg = DialectCorpusConfig::small();
        assert_eq!(mysqldump_script(cfg), mysqldump_script(cfg));
        assert_eq!(plpgsql_script(cfg), plpgsql_script(cfg));
    }

    #[test]
    fn scripts_carry_their_dialect_signatures() {
        let cfg = DialectCorpusConfig::small();
        let my = mysqldump_script(cfg);
        assert!(my.contains("DELIMITER $$"));
        assert!(my.contains("# Dump of table"));
        assert!(my.contains("`tbl_0`"));
        let pg = plpgsql_script(cfg);
        assert!(pg.contains("$fn$"));
        assert!(pg.contains("BEGIN ATOMIC"));
        assert!(pg.contains("ILIKE"));
    }
}
