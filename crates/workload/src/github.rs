//! The labelled GitHub query corpus (§8.1).
//!
//! The paper extracts ~174k string-quoted SQL statements from 1406
//! open-source repositories and compares sqlcheck against dbdeo on them.
//! The original corpus has no ground truth — the authors hand-label a
//! subset for Table 2. Here we invert the construction: a seeded generator
//! emits repositories of statements **with known labels**, mixing
//!
//! * *clean* statements (no AP),
//! * *positive* statements carrying a specific AP (including the variant
//!   spellings that only sqlcheck's richer rules catch), and
//! * *hard negatives* — statements crafted to trip a context-free regex
//!   detector (dbdeo's false-positive modes documented in Table 2).
//!
//! Injection rates are calibrated so per-AP counts land in the paper's
//! ballpark; exact precision/recall becomes computable.

use sqlcheck::AntiPatternKind;
use sqlcheck_minidb::stats::SmallRng;

/// One generated statement with its ground-truth labels.
#[derive(Debug, Clone)]
pub struct LabeledStatement {
    /// The SQL text.
    pub sql: String,
    /// Ground-truth AP kinds present in this statement (may be empty).
    pub labels: Vec<AntiPatternKind>,
}

/// A generated repository: a batch of statements that share a schema.
#[derive(Debug, Clone)]
pub struct Repository {
    /// Synthetic repo name.
    pub name: String,
    /// The statements, in order (DDL first, then DML).
    pub statements: Vec<LabeledStatement>,
}

impl Repository {
    /// The repository's statements as one script.
    pub fn script(&self) -> String {
        self.statements
            .iter()
            .map(|s| s.sql.as_str())
            .collect::<Vec<_>>()
            .join(";\n")
    }
}

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of repositories.
    pub repositories: usize,
    /// Statements per repository (mean).
    pub statements_per_repo: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        // Paper scale: 1406 repos, ~174k statements (~124 per repo).
        CorpusConfig { repositories: 1406, statements_per_repo: 124, seed: 0x9178B }
    }
}

impl CorpusConfig {
    /// A small configuration for tests.
    pub fn small() -> Self {
        CorpusConfig { repositories: 30, statements_per_repo: 40, seed: 0x9178B }
    }
}

/// Generate the corpus.
pub fn generate_corpus(cfg: CorpusConfig) -> Vec<Repository> {
    let mut rng = SmallRng::new(cfg.seed);
    (0..cfg.repositories)
        .map(|i| generate_repository(i, cfg.statements_per_repo, &mut rng))
        .collect()
}

fn generate_repository(index: usize, n_statements: usize, rng: &mut SmallRng) -> Repository {
    let mut statements = Vec::with_capacity(n_statements);
    let t = index; // table-name uniqueness across templates
    let mut s = 0;
    while statements.len() < n_statements {
        statements.extend(generate_statements(t, s, rng));
        s += 1;
    }
    statements.truncate(n_statements);
    Repository { name: format!("repo_{index:04}"), statements }
}

use AntiPatternKind::*;

fn generate_statements(repo: usize, seq: usize, rng: &mut SmallRng) -> Vec<LabeledStatement> {
    // ~50% clean, ~35% positives, ~15% hard negatives (some of which are
    // multi-statement groups that only context analysis classifies right).
    let roll = rng.gen_range(100);
    if roll < 50 {
        vec![clean_statement(repo, seq, rng)]
    } else if roll < 82 {
        vec![positive_statement(repo, seq, rng)]
    } else if roll < 85 {
        // Clone Table needs at least two numbered siblings for a
        // context-aware detector; dbdeo flags each one on its own.
        let t = ident("tbl", repo, seq);
        vec![
            LabeledStatement {
                sql: format!("CREATE TABLE {t}_2019 (pk INTEGER PRIMARY KEY, v TEXT)"),
                labels: vec![CloneTable],
            },
            LabeledStatement {
                sql: format!("CREATE TABLE {t}_2020 (pk INTEGER PRIMARY KEY, v TEXT)"),
                labels: vec![CloneTable],
            },
        ]
    } else {
        hard_negative_statements(repo, seq, rng)
    }
}

/// Table names intentionally never end in a digit — real schemas rarely
/// do, and a trailing digit is exactly dbdeo's Clone Table trigger.
fn ident(prefix: &str, repo: usize, seq: usize) -> String {
    const WORDS: &[&str] = &[
        "orders", "users", "items", "events", "sessions", "posts", "tags", "files",
        "invoices", "carts",
    ];
    format!("{prefix}_{}_{}_{}", WORDS[seq % WORDS.len()], repo, to_alpha(seq))
}

/// Encode a number as letters so identifiers don't end in digits.
fn to_alpha(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'a' + (n % 26) as u8) as char);
        n /= 26;
        if n == 0 {
            break;
        }
    }
    s
}

fn clean_statement(repo: usize, seq: usize, rng: &mut SmallRng) -> LabeledStatement {
    let t = ident("tbl", repo, seq);
    let sql = match rng.gen_range(6) {
        0 => format!(
            "CREATE TABLE {t} (order_key INTEGER PRIMARY KEY, customer TEXT NOT NULL, \
             total NUMERIC(12, 2), placed_at TIMESTAMPTZ)"
        ),
        1 => format!("SELECT order_key, total FROM {t} WHERE order_key = {}", rng.gen_range(1000)),
        2 => format!(
            "INSERT INTO {t} (order_key, customer, total, placed_at) VALUES ({}, 'acme', 12.50, CURRENT_TIMESTAMP)",
            rng.gen_range(100000)
        ),
        3 => format!("UPDATE {t} SET total = total + 1 WHERE order_key = {}", rng.gen_range(1000)),
        4 => format!("SELECT customer, COUNT(order_key) FROM {t} GROUP BY customer"),
        _ => format!("DELETE FROM {t} WHERE order_key = {}", rng.gen_range(1000)),
    };
    LabeledStatement { sql, labels: vec![] }
}

/// The eleven positive families, weighted roughly like the per-AP rows of
/// Table 2/Table 3 (Pattern Matching and God Table common; Adjacency List
/// rare).
fn positive_statement(repo: usize, seq: usize, rng: &mut SmallRng) -> LabeledStatement {
    let t = ident("tbl", repo, seq);
    match rng.gen_range(14) {
        // -- Pattern Matching (2 weights: common)
        0 | 1 => {
            let sql = match rng.gen_range(3) {
                0 => format!("SELECT * FROM {t} WHERE name LIKE '%{}%'", rng.gen_range(100)),
                1 => format!("SELECT id FROM {t} WHERE body REGEXP '.*error.*'"),
                _ => format!("SELECT id FROM {t} WHERE slug LIKE '%_draft'"),
            };
            let mut labels = vec![PatternMatching];
            if sql.contains("SELECT *") {
                labels.push(ColumnWildcard);
            }
            LabeledStatement { sql, labels }
        }
        // -- God Table (12+ real columns)
        2 => {
            let cols: Vec<String> =
                (0..12).map(|i| format!("attr_{} TEXT", to_alpha(i))).collect();
            LabeledStatement {
                sql: format!("CREATE TABLE {t} (pk INTEGER PRIMARY KEY, {})", cols.join(", ")),
                labels: vec![GodTable],
            }
        }
        // -- Enumerated Types: ENUM spelling and CHECK IN-list variant
        //    (dbdeo catches only the former — a designed FN).
        3 => {
            let sql = if rng.gen_range(2) == 0 {
                format!("CREATE TABLE {t} (pk INTEGER PRIMARY KEY, status ENUM('new','open','done'))")
            } else {
                format!(
                    "CREATE TABLE {t} (pk INTEGER PRIMARY KEY, status VARCHAR(8), \
                     CHECK (status IN ('new','open','done')))"
                )
            };
            LabeledStatement { sql, labels: vec![EnumeratedTypes] }
        }
        // -- Rounding Errors
        4 => LabeledStatement {
            sql: format!("CREATE TABLE {t} (pk INTEGER PRIMARY KEY, price FLOAT, tax DOUBLE PRECISION)"),
            labels: vec![RoundingErrors],
        },
        // -- Data in Metadata
        5 => LabeledStatement {
            sql: format!(
                "CREATE TABLE {t} (pk INTEGER PRIMARY KEY, tag1 TEXT, tag2 TEXT, tag3 TEXT)"
            ),
            labels: vec![DataInMetadata],
        },
        // -- Adjacency List (rare)
        6 if rng.gen_range(3) == 0 => LabeledStatement {
            sql: format!(
                "CREATE TABLE {t} (pk INTEGER PRIMARY KEY, parent_id INTEGER REFERENCES {t}(pk))"
            ),
            labels: vec![AdjacencyList],
        },
        // -- Multi-Valued Attribute: three spellings, only the first is
        //    dbdeo's regex shape.
        6 | 7 => {
            let (sql, labels) = match rng.gen_range(3) {
                0 => (
                    format!("SELECT * FROM {t} WHERE member_ids LIKE '%,42,%'"),
                    vec![MultiValuedAttribute, PatternMatching, ColumnWildcard],
                ),
                1 => (
                    format!("SELECT * FROM {t} WHERE member_ids REGEXP '[[:<:]]42[[:>:]]'"),
                    vec![MultiValuedAttribute, PatternMatching, ColumnWildcard],
                ),
                _ => (
                    format!("INSERT INTO {t} (pk, member_ids) VALUES ({}, 'U1,U2,U3')", seq),
                    vec![MultiValuedAttribute],
                ),
            };
            LabeledStatement { sql, labels }
        }
        // -- No Primary Key
        8 | 9 => LabeledStatement {
            sql: format!("CREATE TABLE {t} (name TEXT, note TEXT)"),
            labels: vec![NoPrimaryKey],
        },
        // -- Column Wildcard / Implicit Columns
        10 => LabeledStatement {
            sql: format!("SELECT * FROM {t} ORDER BY added_at DESC"),
            labels: vec![ColumnWildcard],
        },
        11 => LabeledStatement {
            sql: format!("INSERT INTO {t} VALUES ({}, 'x', 'y')", seq),
            labels: vec![ImplicitColumns],
        },
        // -- Ordering by RAND
        12 => LabeledStatement {
            sql: format!("SELECT id FROM {t} ORDER BY RAND() LIMIT 10"),
            labels: vec![OrderingByRand],
        },
        // -- Readable Password
        _ => LabeledStatement {
            sql: format!(
                "CREATE TABLE {t} (pk INTEGER PRIMARY KEY, login TEXT, password VARCHAR(64))"
            ),
            labels: vec![ReadablePassword],
        },
    }
}

/// Hard negatives: statement groups with **no** AP that a weaker analysis
/// mislabels. Single statements model dbdeo's Table 2 FP modes; the
/// multi-statement groups model *intra-query* false positives that only
/// the application context (inter-query analysis) can suppress — the
/// paper's 86656 → 63058 reduction mechanism.
fn hard_negative_statements(repo: usize, seq: usize, rng: &mut SmallRng) -> Vec<LabeledStatement> {
    let t = ident("tbl", repo, seq);
    let clean = |sql: String| LabeledStatement { sql, labels: vec![] };
    match rng.gen_range(10) {
        // A text column named like a list that stores a single title — the
        // DDL heuristic for Multi-Valued Attribute over-fires here (an
        // intentional sqlcheck false positive; the paper's ap-detect has
        // FP-S 358 on the GitHub benchmark).
        9 => vec![clean(format!(
            "CREATE TABLE {t} (pk INTEGER PRIMARY KEY, task_list TEXT, owner TEXT)"
        ))],
        // Prefix LIKE: indexable, not a Pattern Matching AP; dbdeo flags it.
        0 => vec![clean(format!(
            "SELECT id FROM {t} WHERE sku LIKE 'AB-{}%'",
            rng.gen_range(100)
        ))],
        // 8 columns + constraints: comma count ≥ 10 trips dbdeo God Table.
        1 => {
            let cols: Vec<String> =
                (0..8).map(|i| format!("f_{} INTEGER", to_alpha(i))).collect();
            vec![clean(format!(
                "CREATE TABLE {t} (pk INTEGER PRIMARY KEY, {}, UNIQUE (f_a, f_b), CHECK (f_c > 0))",
                cols.join(", ")
            ))]
        }
        // 'enum(' inside a string literal.
        2 => vec![clean(format!(
            "INSERT INTO {t} (pk, note) VALUES ({seq}, 'uses enum(x) internally')"
        ))],
        // The word 'double' in a DEFAULT string, not a type.
        3 => vec![clean(format!(
            "CREATE TABLE {t} (pk INTEGER PRIMARY KEY, room TEXT DEFAULT 'double')"
        ))],
        // v1/v2 value tokens look like numbered identifiers to dbdeo.
        4 => vec![clean(format!("INSERT INTO {t} (pk, a, b) VALUES ({seq}, 'v1', 'v2')"))],
        // manager_id referencing ANOTHER table is not an adjacency list.
        5 => vec![clean(format!(
            "CREATE TABLE {t} (pk INTEGER PRIMARY KEY, manager_id INTEGER REFERENCES managers(id))"
        ))],
        // --- context-dependent groups below: intra-query FPs ---
        // CREATE without a PK, fixed by a later ALTER (No Primary Key FP).
        6 => vec![
            clean(format!("CREATE TABLE {t} (slug TEXT NOT NULL, body TEXT)")),
            clean(format!("ALTER TABLE {t} ADD CONSTRAINT {t}_pk PRIMARY KEY (slug)")),
        ],
        // NOT NULL columns concatenated (Concatenate Nulls FP).
        7 => vec![
            clean(format!(
                "CREATE TABLE {t} (pk INTEGER PRIMARY KEY, first TEXT NOT NULL, last TEXT NOT NULL)"
            )),
            clean(format!("SELECT first || last FROM {t} WHERE pk = {seq}")),
        ],
        // DISTINCT over a join on a primary key (Distinct+Join FP); the
        // address LIKE is a real Pattern Matching AP but NOT an MVA.
        _ => vec![
            clean(format!("CREATE TABLE {t} (pk INTEGER PRIMARY KEY, address TEXT)")),
            LabeledStatement {
                sql: format!(
                    "SELECT DISTINCT x.note FROM x JOIN {t} ON x.ref = {t}.pk WHERE {t}.address LIKE '%Main St,%'"
                ),
                labels: vec![PatternMatching],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = generate_corpus(CorpusConfig::small());
        let b = generate_corpus(CorpusConfig::small());
        assert_eq!(a.len(), b.len());
        assert_eq!(a[3].statements[5].sql, b[3].statements[5].sql);
    }

    #[test]
    fn corpus_has_positives_negatives_and_clean() {
        let corpus = generate_corpus(CorpusConfig::small());
        let all: Vec<&LabeledStatement> =
            corpus.iter().flat_map(|r| &r.statements).collect();
        let labelled = all.iter().filter(|s| !s.labels.is_empty()).count();
        assert!(labelled > all.len() / 5, "enough positives");
        assert!(labelled < all.len() * 3 / 5, "enough clean statements");
    }

    #[test]
    fn every_statement_parses_totally() {
        let corpus = generate_corpus(CorpusConfig::small());
        for repo in &corpus {
            for s in &repo.statements {
                let parsed = sqlcheck_parser::parse(&s.sql);
                assert_eq!(parsed.len(), 1, "one statement: {}", s.sql);
            }
        }
    }

    #[test]
    fn label_spectrum_covers_many_kinds() {
        let corpus = generate_corpus(CorpusConfig::small());
        let mut kinds = std::collections::BTreeSet::new();
        for repo in &corpus {
            for s in &repo.statements {
                kinds.extend(s.labels.iter().copied());
            }
        }
        assert!(kinds.len() >= 9, "kinds seen: {kinds:?}");
    }

    #[test]
    fn paper_scale_statement_count() {
        let cfg = CorpusConfig::default();
        assert_eq!(cfg.repositories, 1406);
        // ~174k statements
        let total = cfg.repositories * cfg.statements_per_repo;
        assert!((170_000..180_000).contains(&total));
    }
}
