//! The 15 Django web applications (§8.4, Table 4 / Table 7).
//!
//! The paper deploys 15 actively developed Django applications, collects
//! their SQL (integration tests / manual interaction), runs sqlcheck, and
//! reports the high-impact APs to the developers. Each [`AppSpec`] mirrors
//! one Table 7 row — name, popularity, domain, number of APs detected, and
//! the AP kinds that were reported upstream. The trace generator emits an
//! ORM-flavoured SQL trace whose AP surface matches the row.

use sqlcheck::AntiPatternKind;

/// One Table 7 application.
#[derive(Debug, Clone, Copy)]
pub struct AppSpec {
    /// Repository name.
    pub name: &'static str,
    /// GitHub stars (Table 7's popularity column).
    pub stars: &'static str,
    /// Application domain.
    pub domain: &'static str,
    /// Number of APs the paper detected.
    pub detected: usize,
    /// AP kinds the paper reported to the developers.
    pub reported: &'static [AntiPatternKind],
    /// Whether the developers acknowledged the report (Table 7's A column).
    pub acknowledged: bool,
}

use AntiPatternKind::*;

/// The 15 applications of Table 7.
pub const APPS: &[AppSpec] = &[
    AppSpec {
        name: "Globaleaks",
        stars: "741",
        domain: "Whistleblower",
        detected: 10,
        reported: &[NoForeignKey, EnumeratedTypes],
        acknowledged: true,
    },
    AppSpec {
        name: "Django-oscar",
        stars: "4.1k",
        domain: "E-commerce",
        detected: 12,
        reported: &[RoundingErrors, IndexOveruse],
        acknowledged: true,
    },
    AppSpec {
        name: "Saleor",
        stars: "6.5k",
        domain: "E-commerce",
        detected: 10,
        reported: &[MultiValuedAttribute, IndexOveruse],
        acknowledged: true,
    },
    AppSpec {
        name: "Django-crm",
        stars: "654",
        domain: "CRM",
        detected: 8,
        reported: &[IndexUnderuse, IndexOveruse, PatternMatching, NoDomainConstraint],
        acknowledged: true,
    },
    AppSpec {
        name: "django-cms",
        stars: "7.2k",
        domain: "CMS",
        detected: 11,
        reported: &[IndexOveruse],
        acknowledged: true,
    },
    AppSpec {
        name: "wagtail-autocomplete",
        stars: "41",
        domain: "Utility",
        detected: 1,
        reported: &[PatternMatching],
        acknowledged: true,
    },
    AppSpec {
        name: "shuup",
        stars: "1.1k",
        domain: "E-commerce",
        detected: 6,
        reported: &[IndexOveruse],
        acknowledged: true,
    },
    AppSpec {
        name: "Pretix",
        stars: "821",
        domain: "E-commerce",
        detected: 11,
        reported: &[IndexOveruse, PatternMatching, NoDomainConstraint],
        acknowledged: true,
    },
    AppSpec {
        name: "Django-countries",
        stars: "755",
        domain: "Library",
        detected: 1,
        reported: &[MultiValuedAttribute],
        acknowledged: true,
    },
    AppSpec {
        name: "micro-finance",
        stars: "55",
        domain: "Finance",
        detected: 8,
        reported: &[IndexUnderuse, IndexOveruse, PatternMatching, NoDomainConstraint],
        acknowledged: true,
    },
    AppSpec {
        name: "bootcamp",
        stars: "1.9k",
        domain: "Social Ntwrk",
        detected: 5,
        reported: &[IndexOveruse],
        acknowledged: true,
    },
    AppSpec {
        name: "NetBox",
        stars: "6.2k",
        domain: "DCIM",
        detected: 9,
        reported: &[IndexOveruse, PatternMatching, NoDomainConstraint],
        acknowledged: true,
    },
    AppSpec {
        name: "Ralph",
        stars: "1.3k",
        domain: "Asset Mgmt",
        detected: 12,
        reported: &[IndexOveruse, PatternMatching, NoDomainConstraint],
        acknowledged: false,
    },
    AppSpec {
        name: "Tiaga",
        stars: "6.5k",
        domain: "E-commerce",
        detected: 9,
        reported: &[IndexOveruse, NoDomainConstraint],
        acknowledged: false,
    },
    AppSpec {
        name: "wagtail",
        stars: "8.4k",
        domain: "CMS",
        detected: 10,
        reported: &[IndexOveruse, NoDomainConstraint],
        acknowledged: false,
    },
];

/// Total APs detected across Table 7 (the paper reports 123).
pub fn paper_total_detected() -> usize {
    APPS.iter().map(|a| a.detected).sum()
}

/// Emit an ORM-flavoured SQL trace for one application whose AP surface
/// includes the reported kinds and enough filler APs to approximate the
/// detected count.
pub fn sql_trace(app: &AppSpec) -> String {
    let mut out = String::new();
    let prefix = app.name.to_ascii_lowercase().replace(['-', ' ', '.'], "_");
    // Django baseline: every app has generic-id tables and wide models.
    out.push_str(&format!(
        "CREATE TABLE {prefix}_user (id INTEGER PRIMARY KEY, username VARCHAR(150) NOT NULL, email TEXT, last_login TIMESTAMP);\n"
    ));
    let injected = 2; // GenericPrimaryKey + MissingTimezone above

    let mut snippets: Vec<(AntiPatternKind, String)> = Vec::new();
    for kind in app.reported {
        snippets.push((*kind, snippet(*kind, &prefix)));
    }
    // Fill to the detected count with the default Django-ish AP mix.
    let filler = [
        ColumnWildcard,
        ImplicitColumns,
        GodTable,
        NoPrimaryKey,
        TooManyJoins,
        DistinctJoin,
        OrderingByRand,
        CloneTable,
        ConcatenateNulls,
        RoundingErrors,
        EnumeratedTypes,
    ];
    let mut fi = 0;
    while injected + snippets.len() < app.detected && fi < filler.len() {
        let k = filler[fi];
        fi += 1;
        if app.reported.contains(&k) {
            continue;
        }
        snippets.push((k, snippet(k, &prefix)));
    }
    for (_, s) in snippets {
        out.push_str(&s);
        out.push('\n');
    }
    let _ = injected;
    out
}

fn snippet(kind: AntiPatternKind, p: &str) -> String {
    match kind {
        NoForeignKey => format!(
            "CREATE TABLE {p}_tenant (tenant_key INTEGER PRIMARY KEY, zone TEXT);\n\
             CREATE TABLE {p}_questionnaire (q_key INTEGER PRIMARY KEY, tenant_key INTEGER, name TEXT);\n\
             SELECT q.name FROM {p}_questionnaire q JOIN {p}_tenant t ON t.tenant_key = q.tenant_key WHERE q.name = 'x';"
        ),
        EnumeratedTypes => format!(
            "CREATE TABLE {p}_order (order_key INTEGER PRIMARY KEY, status VARCHAR(12), CHECK (status IN ('new','paid','shipped')));"
        ),
        RoundingErrors => format!(
            "CREATE TABLE {p}_price (price_key INTEGER PRIMARY KEY, amount FLOAT, tax DOUBLE PRECISION);"
        ),
        IndexOveruse => format!(
            "CREATE TABLE {p}_product (product_key INTEGER PRIMARY KEY, sku TEXT, vendor TEXT, active BOOLEAN);\n\
             CREATE INDEX {p}_idx_sku_vendor ON {p}_product (sku, vendor);\n\
             CREATE INDEX {p}_idx_sku ON {p}_product (sku);\n\
             CREATE INDEX {p}_idx_active ON {p}_product (active);\n\
             SELECT product_key FROM {p}_product WHERE sku = 'A1' AND vendor = 'acme';"
        ),
        IndexUnderuse => format!(
            "CREATE TABLE {p}_event (event_key INTEGER PRIMARY KEY, kind TEXT, actor TEXT);\n\
             SELECT * FROM {p}_event WHERE actor = 'bob';\n\
             SELECT * FROM {p}_event WHERE actor = 'eve';"
        ),
        PatternMatching => format!(
            "SELECT id FROM {p}_user WHERE username LIKE '%admin%';"
        ),
        NoDomainConstraint => format!(
            "CREATE TABLE {p}_review (review_key INTEGER PRIMARY KEY, rating INTEGER, body TEXT);\n\
             INSERT INTO {p}_review (review_key, rating, body) VALUES (1, 99, 'out of range accepted');"
        ),
        MultiValuedAttribute => format!(
            "CREATE TABLE {p}_country (country_key INTEGER PRIMARY KEY, region_ids TEXT);\n\
             SELECT * FROM {p}_country WHERE region_ids LIKE '%,12,%';"
        ),
        ColumnWildcard => format!("SELECT * FROM {p}_user WHERE id = 1;"),
        ImplicitColumns => format!("INSERT INTO {p}_user VALUES (99, 'bot', 'bot@x.y', NULL);"),
        GodTable => {
            let cols: Vec<String> = (0..12).map(|i| format!("opt_{i} TEXT")).collect();
            format!(
                "CREATE TABLE {p}_settings (settings_key INTEGER PRIMARY KEY, {});",
                cols.join(", ")
            )
        }
        NoPrimaryKey => format!("CREATE TABLE {p}_log (line TEXT, at TIMESTAMPTZ);"),
        TooManyJoins => format!(
            "SELECT a.id FROM {p}_a a JOIN {p}_b b ON a.id=b.a JOIN {p}_c c ON b.id=c.b \
             JOIN {p}_d d ON c.id=d.c JOIN {p}_e e ON d.id=e.d JOIN {p}_f f ON e.id=f.e;"
        ),
        DistinctJoin => format!(
            "SELECT DISTINCT u.email FROM {p}_user u JOIN {p}_session s ON s.user_ref = u.email;"
        ),
        OrderingByRand => format!("SELECT id FROM {p}_user ORDER BY RAND() LIMIT 5;"),
        CloneTable => format!(
            "CREATE TABLE {p}_archive_2019 (k INTEGER PRIMARY KEY);\n\
             CREATE TABLE {p}_archive_2020 (k INTEGER PRIMARY KEY);"
        ),
        ConcatenateNulls => format!(
            "CREATE TABLE {p}_person (person_key INTEGER PRIMARY KEY, first TEXT, last TEXT);\n\
             SELECT first || ' ' || last FROM {p}_person;"
        ),
        _ => format!("SELECT id FROM {p}_user WHERE id = 0;"),
    }
}

/// Build the application's deployed database, for the data-analysis
/// rules (the paper deployed each app on PostgreSQL, so sqlcheck saw its
/// data). Only AP kinds that *require* data get backing tables here.
pub fn database(app: &AppSpec) -> sqlcheck_minidb::database::Database {
    use sqlcheck_minidb::prelude::*;
    let prefix = app.name.to_ascii_lowercase().replace(['-', ' ', '.'], "_");
    let mut db = Database::new();
    if app.reported.contains(&NoDomainConstraint) {
        db.create_table(
            TableSchema::new(format!("{prefix}_review"))
                .column(Column::new("review_key", DataType::Int).not_null())
                .column(Column::new("rating", DataType::Int))
                .column(Column::new("body", DataType::Text))
                .primary_key(&["review_key"]),
        )
        .unwrap();
        for i in 0..80 {
            db.insert(
                &format!("{prefix}_review"),
                vec![Value::Int(i), Value::Int(1 + i % 5), Value::text(format!("review {i}"))],
            )
            .unwrap();
        }
    }
    if app.reported.contains(&MultiValuedAttribute) {
        db.create_table(
            TableSchema::new(format!("{prefix}_country"))
                .column(Column::new("country_key", DataType::Int).not_null())
                .column(Column::new("region_ids", DataType::Text))
                .primary_key(&["country_key"]),
        )
        .unwrap();
        for i in 0..60 {
            db.insert(
                &format!("{prefix}_country"),
                vec![Value::Int(i), Value::text(format!("{},{},{}", i, i + 1, i + 2))],
            )
            .unwrap();
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlcheck::{ContextBuilder, Detector};

    #[test]
    fn fifteen_apps_totalling_123_aps() {
        assert_eq!(APPS.len(), 15);
        assert_eq!(paper_total_detected(), 123);
        let reported: usize = APPS.iter().map(|a| a.reported.len()).sum();
        assert_eq!(reported, 32, "Table 7 reports 32 APs");
    }

    #[test]
    fn every_trace_detects_its_reported_kinds() {
        for app in APPS {
            let ctx = ContextBuilder::new()
                .add_script(&sql_trace(app))
                .with_database(database(app), sqlcheck::DataAnalysisConfig::default())
                .build();
            let report = Detector::default().detect(&ctx);
            let kinds = report.kinds();
            for expected in app.reported {
                assert!(
                    kinds.contains(expected),
                    "{}: expected {expected}, got {kinds:?}",
                    app.name
                );
            }
        }
    }

    #[test]
    fn detected_counts_are_in_the_paper_ballpark() {
        // Kind-level counts track the Table 7 magnitudes loosely: within
        // a factor-two band of the paper's per-app detected numbers.
        for app in APPS {
            let ctx = ContextBuilder::new().add_script(&sql_trace(app)).build();
            let kinds = Detector::default().detect(&ctx).kinds().len();
            assert!(
                kinds + 4 >= app.detected.min(10) / 2,
                "{}: {kinds} kinds vs {} in the paper",
                app.name,
                app.detected
            );
        }
    }

    #[test]
    fn acknowledgement_counts_match_table7() {
        let acks = APPS.iter().filter(|a| a.acknowledged).count();
        assert_eq!(acks, 12, "12 of 15 rows carry the ✓ acknowledgement");
    }
}
