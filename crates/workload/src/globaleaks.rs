//! The GlobaLeaks evaluation application (§2.1, §8.2).
//!
//! The paper recreates GlobaLeaks' schema on PostgreSQL and loads a
//! synthetic dataset (10M records over 11 tables), then measures each AP's
//! performance impact by executing query tasks before and after the fix.
//! This module builds the same application on `minidb` at configurable
//! scale: an **AP-laden** variant (comma-separated `User_IDs`, CHECK-IN
//! enum on `Role`, no FK between `Questionnaire` and `Tenant`) and the
//! **refactored** variant of Fig 2/Fig 5 (the `Hosting` intersection table
//! and the `Role` lookup table).

use sqlcheck_minidb::prelude::*;

/// Scale knobs for the synthetic dataset.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of users.
    pub users: usize,
    /// Number of tenants. Each user belongs to `memberships` tenants.
    pub tenants: usize,
    /// Tenant memberships per user.
    pub memberships: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        // Laptop-scale stand-in for the paper's 10M-row deployment.
        Scale { users: 20_000, tenants: 2_000, memberships: 2, seed: 0x61EA }
    }
}

impl Scale {
    /// A small scale for unit tests.
    pub fn tiny() -> Self {
        Scale { users: 200, tenants: 40, memberships: 2, seed: 7 }
    }
}

/// Number of distinct roles in the `Role` domain.
pub const ROLES: usize = 3;

/// The AP-laden GlobaLeaks database (Fig 1): `Tenants.User_IDs` is a
/// comma-separated list, `Users.Role` is CHECK-IN constrained, and the
/// remaining application tables carry the paper's other inherent APs.
pub fn build_ap_database(scale: Scale) -> Database {
    let mut db = Database::new();
    let mut rng = SmallRng::new(scale.seed);

    db.create_table(
        TableSchema::new("Users")
            .column(Column::new("User_ID", DataType::Text).not_null())
            .column(Column::new("Name", DataType::Text))
            .column(Column::new("Role", DataType::Text))
            .column(Column::new("Email", DataType::Text))
            .primary_key(&["User_ID"])
            .check(Check::InList {
                name: "User_Role_Check".into(),
                column: "Role".into(),
                values: (0..ROLES).map(|r| Value::text(format!("R{}", r + 1))).collect(),
            }),
    )
    .unwrap();

    db.create_table(
        TableSchema::new("Tenants")
            .column(Column::new("Tenant_ID", DataType::Text).not_null())
            .column(Column::new("Zone_ID", DataType::Text))
            .column(Column::new("Active", DataType::Bool))
            .column(Column::new("User_IDs", DataType::Text)) // the MVA column
            .primary_key(&["Tenant_ID"]),
    )
    .unwrap();

    // No FK from Questionnaire.Tenant_ID → Tenants (Example 3's AP).
    db.create_table(
        TableSchema::new("Questionnaire")
            .column(Column::new("Questionnaire_ID", DataType::Int).not_null())
            .column(Column::new("Tenant_ID", DataType::Text))
            .column(Column::new("Name", DataType::Text))
            .column(Column::new("Editable", DataType::Bool))
            .primary_key(&["Questionnaire_ID"]),
    )
    .unwrap();

    create_common_tables(&mut db);

    // Users.
    for u in 0..scale.users {
        db.insert(
            "Users",
            vec![
                Value::text(format!("U{u}")),
                Value::text(format!("Name{u}")),
                Value::text(format!("R{}", u % ROLES + 1)),
                Value::text(format!("user{u}@example.org")),
            ],
        )
        .unwrap();
    }
    // Tenants with comma-separated user lists (each user in `memberships`
    // tenants, assignment derived from the PRNG for irregularity).
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); scale.tenants];
    for u in 0..scale.users {
        for _ in 0..scale.memberships {
            let t = rng.gen_range(scale.tenants);
            members[t].push(u);
        }
    }
    for (t, users) in members.iter().enumerate() {
        let list =
            users.iter().map(|u| format!("U{u}")).collect::<Vec<_>>().join(",");
        db.insert(
            "Tenants",
            vec![
                Value::text(format!("T{t}")),
                Value::text(format!("Z{}", t % 10)),
                Value::Bool(t % 7 != 0),
                Value::text(list),
            ],
        )
        .unwrap();
    }
    // Questionnaires (2 per tenant), some rows dangle (no FK enforcement!).
    for q in 0..scale.tenants * 2 {
        let t = if q % 97 == 0 { scale.tenants + q } else { q % scale.tenants };
        db.insert(
            "Questionnaire",
            vec![
                Value::Int(q as i64),
                Value::text(format!("T{t}")),
                Value::text(format!("Q{q}")),
                Value::Bool(q % 2 == 0),
            ],
        )
        .unwrap();
    }
    fill_common_tables(&mut db, scale);
    db
}

/// The refactored database (Fig 2 + Fig 5): `Hosting` intersection table,
/// `Role` lookup table with integer FK, declared FKs, and supporting
/// indexes.
pub fn build_fixed_database(scale: Scale) -> Database {
    let mut db = Database::new();
    let mut rng = SmallRng::new(scale.seed);

    db.create_table(
        TableSchema::new("Role")
            .column(Column::new("Role_ID", DataType::Int).not_null())
            .column(Column::new("Role_Name", DataType::Text).not_null())
            .primary_key(&["Role_ID"]),
    )
    .unwrap();
    for r in 0..ROLES {
        db.insert("Role", vec![Value::Int(r as i64 + 1), Value::text(format!("R{}", r + 1))])
            .unwrap();
    }

    db.create_table(
        TableSchema::new("Users")
            .column(Column::new("User_ID", DataType::Text).not_null())
            .column(Column::new("Name", DataType::Text))
            .column(Column::new("Role", DataType::Int))
            .column(Column::new("Email", DataType::Text))
            .primary_key(&["User_ID"])
            .foreign_key(ForeignKey {
                name: "fk_user_role".into(),
                columns: vec!["Role".into()],
                ref_table: "Role".into(),
                ref_columns: vec!["Role_ID".into()],
                on_delete_cascade: false,
            }),
    )
    .unwrap();

    db.create_table(
        TableSchema::new("Tenants")
            .column(Column::new("Tenant_ID", DataType::Text).not_null())
            .column(Column::new("Zone_ID", DataType::Text))
            .column(Column::new("Active", DataType::Bool))
            .primary_key(&["Tenant_ID"]),
    )
    .unwrap();

    db.create_table(
        TableSchema::new("Hosting")
            .column(Column::new("User_ID", DataType::Text).not_null())
            .column(Column::new("Tenant_ID", DataType::Text).not_null())
            .primary_key(&["User_ID", "Tenant_ID"])
            .foreign_key(ForeignKey {
                name: "fk_hosting_user".into(),
                columns: vec!["User_ID".into()],
                ref_table: "Users".into(),
                ref_columns: vec!["User_ID".into()],
                on_delete_cascade: true,
            })
            .foreign_key(ForeignKey {
                name: "fk_hosting_tenant".into(),
                columns: vec!["Tenant_ID".into()],
                ref_table: "Tenants".into(),
                ref_columns: vec!["Tenant_ID".into()],
                on_delete_cascade: true,
            }),
    )
    .unwrap();

    db.create_table(
        TableSchema::new("Questionnaire")
            .column(Column::new("Questionnaire_ID", DataType::Int).not_null())
            .column(Column::new("Tenant_ID", DataType::Text))
            .column(Column::new("Name", DataType::Text))
            .column(Column::new("Editable", DataType::Bool))
            .primary_key(&["Questionnaire_ID"])
            .foreign_key(ForeignKey {
                name: "fk_q_tenant".into(),
                columns: vec!["Tenant_ID".into()],
                ref_table: "Tenants".into(),
                ref_columns: vec!["Tenant_ID".into()],
                on_delete_cascade: false,
            }),
    )
    .unwrap();

    create_common_tables(&mut db);

    for u in 0..scale.users {
        db.insert(
            "Users",
            vec![
                Value::text(format!("U{u}")),
                Value::text(format!("Name{u}")),
                Value::Int((u % ROLES) as i64 + 1),
                Value::text(format!("user{u}@example.org")),
            ],
        )
        .unwrap();
    }
    for t in 0..scale.tenants {
        db.insert(
            "Tenants",
            vec![
                Value::text(format!("T{t}")),
                Value::text(format!("Z{}", t % 10)),
                Value::Bool(t % 7 != 0),
            ],
        )
        .unwrap();
    }
    // Hosting rows — same membership distribution as the AP variant.
    let mut seen = std::collections::HashSet::new();
    for u in 0..scale.users {
        for _ in 0..scale.memberships {
            let t = rng.gen_range(scale.tenants);
            if seen.insert((u, t)) {
                db.insert(
                    "Hosting",
                    vec![Value::text(format!("U{u}")), Value::text(format!("T{t}"))],
                )
                .unwrap();
            }
        }
    }
    // Index on the Hosting join columns (User_ID is the PK prefix; add a
    // standalone index on Tenant_ID for task #2).
    db.table_mut("Hosting").unwrap().create_index("idx_hosting_tenant", &["Tenant_ID"], false).unwrap();
    for q in 0..scale.tenants * 2 {
        db.insert(
            "Questionnaire",
            vec![
                Value::Int(q as i64),
                Value::text(format!("T{}", q % scale.tenants)),
                Value::text(format!("Q{q}")),
                Value::Bool(q % 2 == 0),
            ],
        )
        .unwrap();
    }
    fill_common_tables(&mut db, scale);
    db
}

/// The remaining application tables (the paper's deployment spans 11
/// tables); content is incidental to the experiments but gives the data
/// analyzer realistic surface.
fn create_common_tables(db: &mut Database) {
    for (name, extra) in [
        ("Submission", Column::new("Payload", DataType::Text)),
        ("Receiver", Column::new("Address", DataType::Text)),
        ("Context", Column::new("Description", DataType::Text)),
        ("InternalFile", Column::new("File_Path", DataType::Text)),
        ("Comment", Column::new("Body", DataType::Text)),
        ("Message", Column::new("Body", DataType::Text)),
    ] {
        db.create_table(
            TableSchema::new(name)
                .column(Column::new("ID", DataType::Int).not_null())
                .column(Column::new("Created_At", DataType::Timestamp))
                .column(extra)
                .primary_key(&["ID"]),
        )
        .unwrap();
    }
}

fn fill_common_tables(db: &mut Database, scale: Scale) {
    let n = (scale.users / 10).max(10);
    for i in 0..n {
        for name in ["Submission", "Receiver", "Context", "InternalFile", "Comment", "Message"] {
            let extra = match name {
                "InternalFile" => Value::text(format!("/var/globaleaks/files/{i}.bin")),
                "Receiver" => Value::text(format!("{i} Liberty Ave, Floor {}", i % 5)),
                _ => Value::text(format!("payload {i}")),
            };
            db.insert(name, vec![Value::Int(i as i64), Value::Timestamp(i as i64 * 1000), extra])
                .unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// The paper's query tasks (§2.1) as physical plans on each variant.
// ---------------------------------------------------------------------------

/// Task #1 (AP): tenants a user belongs to, via word-boundary LIKE on the
/// comma-separated list. Full scan + pattern match per row.
pub fn task1_ap(db: &Database, user: &str) -> Vec<Row> {
    let tenants = db.table("Tenants").unwrap();
    let uid_col = tenants.schema.column_index("User_IDs").unwrap();
    let pattern = format!("[[:<:]]{user}[[:>:]]");
    let pred = PExpr::Like(
        Box::new(PExpr::Col(uid_col)),
        Box::new(PExpr::Const(Value::text(pattern))),
    );
    seq_scan_filter(tenants, &pred)
}

/// Task #1 (fixed): index lookup on `Hosting.User_ID`, join to `Tenants`.
pub fn task1_fixed(db: &Database, user: &str) -> Vec<Row> {
    let hosting = db.table("Hosting").unwrap();
    let tenants = db.table("Tenants").unwrap();
    let mut out = Vec::new();
    let pkey = hosting.index("Hosting_pkey").unwrap();
    // PK is (User_ID, Tenant_ID) — range scan on the User_ID prefix.
    let lo = IndexKey(vec![Value::text(user), Value::text("")]);
    let hi = IndexKey(vec![Value::text(user), Value::text("\u{10FFFF}")]);
    for rid in pkey.range(Some(&lo), Some(&hi)) {
        let hrow = hosting.get(rid).unwrap();
        let tid = &hrow[1];
        let tkey = tenants.index("Tenants_pkey").unwrap();
        for &trid in tkey.lookup_value(tid) {
            let mut row = hrow.clone();
            row.extend(tenants.get(trid).unwrap().iter().cloned());
            out.push(row);
        }
    }
    out
}

/// Task #2 (AP): users served by a tenant — the LIKE expression join.
pub fn task2_ap(db: &Database, tenant: &str) -> Vec<Row> {
    let tenants = db.table("Tenants").unwrap();
    let users = db.table("Users").unwrap();
    let tid_col = tenants.schema.column_index("Tenant_ID").unwrap();
    let uid_list_col = tenants.schema.column_index("User_IDs").unwrap();
    let tenant_arity = tenants.schema.arity();
    // ON t.User_IDs LIKE '[[:<:]]' || u.User_ID || '[[:>:]]'
    let pattern = PExpr::Concat(
        Box::new(PExpr::Concat(
            Box::new(PExpr::Const(Value::text("[[:<:]]"))),
            Box::new(PExpr::Col(tenant_arity)), // Users.User_ID in combined row
        )),
        Box::new(PExpr::Const(Value::text("[[:>:]]"))),
    );
    let on = PExpr::And(
        Box::new(PExpr::Like(Box::new(PExpr::Col(uid_list_col)), Box::new(pattern))),
        Box::new(PExpr::col_eq(tid_col, Value::text(tenant))),
    );
    nested_loop_join(tenants, users, &on)
}

/// Task #2 (fixed): index probe on `Hosting.Tenant_ID`, then PK lookups
/// into `Users`.
pub fn task2_fixed(db: &Database, tenant: &str) -> Vec<Row> {
    let hosting = db.table("Hosting").unwrap();
    let users = db.table("Users").unwrap();
    let idx = hosting.index("idx_hosting_tenant").unwrap();
    let ukey = users.index("Users_pkey").unwrap();
    let mut out = Vec::new();
    for &rid in idx.lookup_value(&Value::text(tenant)) {
        let hrow = hosting.get(rid).unwrap();
        for &urid in ukey.lookup_value(&hrow[0]) {
            let mut row = hrow.clone();
            row.extend(users.get(urid).unwrap().iter().cloned());
            out.push(row);
        }
    }
    out
}

/// Task #3 (AP): remove a deleted user from every tenant's list — string
/// surgery over a full scan (the §5.1 data-integrity example).
pub fn task3_ap(db: &mut Database, user: &str) -> usize {
    let tenants = db.table("Tenants").unwrap();
    let uid_col = tenants.schema.column_index("User_IDs").unwrap();
    let needle = format!("[[:<:]]{user}[[:>:]]");
    let victims: Vec<(RowId, String)> = tenants
        .scan()
        .filter_map(|(rid, row)| {
            row[uid_col].as_str().and_then(|s| {
                like_match(s, &needle).then(|| (rid, s.to_string()))
            })
        })
        .collect();
    let n = victims.len();
    let table = db.table_mut("Tenants").unwrap();
    for (rid, list) in victims {
        let new_list: String = list
            .split(',')
            .filter(|t| *t != user)
            .collect::<Vec<_>>()
            .join(",");
        let mut row = table.get(rid).unwrap().clone();
        row[uid_col] = Value::text(new_list);
        table.update_row(rid, row).unwrap();
    }
    n
}

/// Task #3 (fixed): delete the user's `Hosting` rows via the PK index.
pub fn task3_fixed(db: &mut Database, user: &str) -> usize {
    let hosting = db.table_mut("Hosting").unwrap();
    let pkey = hosting.index("Hosting_pkey").unwrap();
    let lo = IndexKey(vec![Value::text(user), Value::text("")]);
    let hi = IndexKey(vec![Value::text(user), Value::text("\u{10FFFF}")]);
    let rids = pkey.range(Some(&lo), Some(&hi));
    let n = rids.len();
    for rid in rids {
        hosting.delete_row(rid).unwrap();
    }
    n
}

/// The application's SQL trace (schema + representative queries), used to
/// run the sqlcheck pipeline against GlobaLeaks (Table 4's first row: 10
/// APs detected).
pub fn sql_trace() -> String {
    r#"
CREATE TABLE Users (User_ID VARCHAR(10) PRIMARY KEY, Name TEXT, Role VARCHAR(5), Email TEXT, CHECK (Role IN ('R1','R2','R3')));
CREATE TABLE Tenants (Tenant_ID VARCHAR(10) PRIMARY KEY, Zone_ID VARCHAR(30), Active BOOLEAN, User_IDs TEXT);
CREATE TABLE Questionnaire (Questionnaire_ID INTEGER PRIMARY KEY, Tenant_ID VARCHAR(10), Name VARCHAR(30), Editable BOOLEAN);
CREATE TABLE Submission (ID INTEGER PRIMARY KEY, Created_At TIMESTAMP, Payload TEXT);
CREATE TABLE InternalFile (ID INTEGER PRIMARY KEY, Created_At TIMESTAMP, File_Path TEXT);
CREATE INDEX idx_zone_actv ON Tenants (Zone_ID, Active);
CREATE INDEX idx_zone ON Tenants (Zone_ID);
CREATE INDEX idx_actv ON Tenants (Active);
SELECT * FROM Tenants WHERE User_IDs LIKE '[[:<:]]U1[[:>:]]';
SELECT * FROM Tenants AS t JOIN Users AS u ON t.User_IDs LIKE '[[:<:]]' || u.User_ID || '[[:>:]]' WHERE t.Tenant_ID = 'T1';
SELECT q.Name, q.Editable, t.Active FROM Questionnaire q JOIN Tenants t ON t.Tenant_ID = q.Tenant_ID WHERE q.Editable = true;
SELECT Tenant_ID FROM Tenants WHERE Zone_ID = 'Z1' AND Active = true;
INSERT INTO Tenants VALUES ('T1', 'Z1', true, 'U1,U2');
UPDATE Tenants SET User_IDs = REPLACE(User_IDs, ',u1', '') WHERE User_IDs LIKE '%u1%';
SELECT * FROM Submission ORDER BY RAND();
SELECT DISTINCT t.Zone_ID FROM Tenants t JOIN Questionnaire q ON q.Tenant_ID = t.Tenant_ID;
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ap_and_fixed_tasks_agree_on_results() {
        let scale = Scale::tiny();
        let ap = build_ap_database(scale);
        let fixed = build_fixed_database(scale);
        // Same membership distribution ⇒ same answer cardinalities.
        for user in ["U1", "U17", "U42"] {
            let a = task1_ap(&ap, user).len();
            let f = task1_fixed(&fixed, user).len();
            assert_eq!(a, f, "task1 cardinality for {user}");
        }
        for tenant in ["T1", "T5"] {
            let a = task2_ap(&ap, tenant).len();
            let f = task2_fixed(&fixed, tenant).len();
            assert_eq!(a, f, "task2 cardinality for {tenant}");
        }
    }

    #[test]
    fn task3_removes_user_everywhere() {
        let scale = Scale::tiny();
        let mut ap = build_ap_database(scale);
        let mut fixed = build_fixed_database(scale);
        let n_ap = task3_ap(&mut ap, "U3");
        let n_fixed = task3_fixed(&mut fixed, "U3");
        assert_eq!(n_ap, n_fixed, "same memberships removed");
        assert!(task1_ap(&ap, "U3").is_empty());
        assert!(task1_fixed(&fixed, "U3").is_empty());
    }

    #[test]
    fn trace_detects_the_inherent_aps() {
        use sqlcheck::{AntiPatternKind, ContextBuilder, Detector};
        let ctx = ContextBuilder::new().add_script(&sql_trace()).build();
        let report = Detector::default().detect(&ctx);
        let kinds = report.kinds();
        for expected in [
            AntiPatternKind::MultiValuedAttribute,
            AntiPatternKind::EnumeratedTypes,
            AntiPatternKind::NoForeignKey,
            AntiPatternKind::IndexOveruse,
            AntiPatternKind::ColumnWildcard,
            AntiPatternKind::OrderingByRand,
            AntiPatternKind::ImplicitColumns,
            AntiPatternKind::ExternalDataStorage,
            AntiPatternKind::MissingTimezone,
            AntiPatternKind::PatternMatching,
        ] {
            assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
        }
        assert!(kinds.len() >= 10, "GlobaLeaks inherently carries ≥10 AP kinds");
    }

    #[test]
    fn dangling_questionnaires_exist_in_ap_variant() {
        let ap = build_ap_database(Scale::tiny());
        let q = ap.table("Questionnaire").unwrap();
        let t = ap.table("Tenants").unwrap();
        let tenant_ids: std::collections::HashSet<String> = t
            .scan()
            .map(|(_, r)| r[0].as_str().unwrap().to_string())
            .collect();
        let dangling = q
            .scan()
            .filter(|(_, r)| !tenant_ids.contains(r[1].as_str().unwrap()))
            .count();
        assert!(dangling > 0, "no FK ⇒ dangling references accumulate");
    }
}
