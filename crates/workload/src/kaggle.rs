//! The 31 Kaggle databases (§8.4 data analysis, Appendix A / Table 6).
//!
//! The paper downloads 31 SQLite databases from Kaggle and applies only
//! sqlcheck's data-analysis rules (no queries). Each entry in [`SPECS`]
//! mirrors one Table 6 row: the database name and the AP kinds the paper
//! reports for it. The builder materialises a `minidb` database whose
//! *data* genuinely exhibits those APs, so detection exercises the same
//! code path as the paper's experiment.

use sqlcheck::AntiPatternKind;
use sqlcheck_minidb::prelude::*;

/// One Table 6 database specification.
#[derive(Debug, Clone, Copy)]
pub struct KaggleSpec {
    /// Database name as listed in Table 6.
    pub name: &'static str,
    /// AP kinds Table 6 reports for it.
    pub aps: &'static [AntiPatternKind],
    /// Total AP count Table 6 reports for it.
    pub count: usize,
}

use AntiPatternKind::*;

/// The 31 databases of Table 6 with their reported AP kinds.
pub const SPECS: &[KaggleSpec] = &[
    KaggleSpec { name: "Board Games", aps: &[NoPrimaryKey, DataInMetadata, IncorrectDataType] , count: 12 },
    KaggleSpec { name: "Pennsylvania Safe Schools Report", aps: &[NoPrimaryKey] , count: 1 },
    KaggleSpec {
        name: "Soccer Dataset",
        aps: &[GenericPrimaryKey, DataInMetadata, MissingTimezone, MultiValuedAttribute],
        count: 20,
    },
    KaggleSpec {
        name: "SF Bay Area Bike Share",
        aps: &[NoPrimaryKey, GenericPrimaryKey, IncorrectDataType, MissingTimezone, DenormalizedTable],
        count: 11,
    },
    KaggleSpec { name: "US Baby Names", aps: &[GenericPrimaryKey] , count: 2 },
    KaggleSpec {
        name: "Pitchfork Music Data",
        aps: &[NoPrimaryKey, MissingTimezone, InformationDuplication, DenormalizedTable],
        count: 10,
    },
    KaggleSpec {
        name: "Acad. Research from Indian Univ.",
        aps: &[NoPrimaryKey, IncorrectDataType, RedundantColumn, MultiValuedAttribute],
        count: 17,
    },
    KaggleSpec { name: "What.CD HipHop", aps: &[NoPrimaryKey, MultiValuedAttribute] , count: 3 },
    KaggleSpec { name: "Snap Meme-Tracker", aps: &[MissingTimezone] , count: 1 },
    KaggleSpec { name: "NIPS papers", aps: &[GenericPrimaryKey, DenormalizedTable] , count: 4 },
    KaggleSpec { name: "US Wildfires", aps: &[NoPrimaryKey, RedundantColumn] , count: 2 },
    KaggleSpec { name: "Que from crossvalidated StackExc", aps: &[NoPrimaryKey] , count: 3 },
    KaggleSpec {
        name: "The History of Baseball",
        aps: &[NoPrimaryKey, DataInMetadata, IncorrectDataType, MultiValuedAttribute],
        count: 41,
    },
    KaggleSpec { name: "Twitter US Airline Sentiment", aps: &[DenormalizedTable] , count: 2 },
    KaggleSpec { name: "Hilary Clinton Emails", aps: &[GenericPrimaryKey, IncorrectDataType] , count: 8 },
    KaggleSpec { name: "SEPTA - Regional Rail", aps: &[IncorrectDataType, MissingTimezone] , count: 2 },
    KaggleSpec {
        name: "US Consumer finance Complaints",
        aps: &[NoPrimaryKey, IncorrectDataType, MultiValuedAttribute, DenormalizedTable],
        count: 9,
    },
    KaggleSpec { name: "1st GOP Debate Twitter Sentiment", aps: &[GenericPrimaryKey] , count: 1 },
    KaggleSpec { name: "SF Salaries", aps: &[GenericPrimaryKey, DenormalizedTable] , count: 2 },
    KaggleSpec {
        name: "Freight Matrix Transportation",
        aps: &[NoPrimaryKey, DataInMetadata, RedundantColumn],
        count: 5,
    },
    KaggleSpec { name: "WDIdata", aps: &[NoPrimaryKey, MultiValuedAttribute] , count: 9 },
    KaggleSpec { name: "Amazon Movie Reviews Dataset", aps: &[NoPrimaryKey, MultiValuedAttribute] , count: 2 },
    KaggleSpec { name: "UK Arms Export License", aps: &[NoPrimaryKey] , count: 3 },
    KaggleSpec { name: "Amazon Fine Food Reviews", aps: &[GenericPrimaryKey] , count: 1 },
    KaggleSpec { name: "Stackoverflow Question Favourites", aps: &[MultiValuedAttribute] , count: 1 },
    KaggleSpec { name: "Iron March", aps: &[RedundantColumn] , count: 1 },
    KaggleSpec { name: "C# Methods with Doc. Comments", aps: &[GenericPrimaryKey] , count: 4 },
    KaggleSpec {
        name: "Pesticide Data Program",
        aps: &[NoPrimaryKey, IncorrectDataType, RedundantColumn],
        count: 13,
    },
    KaggleSpec {
        name: "Monty Python Flying Circus",
        aps: &[NoPrimaryKey, MissingTimezone, DenormalizedTable],
        count: 4,
    },
    KaggleSpec { name: "Twitter Conv. about Black Panther", aps: &[] , count: 0 },
    KaggleSpec {
        name: "2016 US Election",
        aps: &[NoPrimaryKey, DataInMetadata, DenormalizedTable],
        count: 6,
    },
];

/// Rows per generated table.
pub const ROWS: usize = 400;

/// Build the database for one spec. Every listed AP is physically present
/// in the data; a clean companion table keeps the database from being
/// pure pathology.
pub fn build(spec: &KaggleSpec, seed: u64) -> Database {
    let mut db = Database::new();
    let mut rng = SmallRng::new(seed ^ KAGGLE_SEED_SALT);
    // Real Kaggle databases spread their APs over several tables; the
    // Table 6 `count` column drives how many AP-bearing tables we build so
    // per-database totals land near the paper's.
    let replicas = spec.count.div_ceil(spec.aps.len().max(1) * 2).max(1);
    const SEGMENTS: &[&str] = &[
        "main_data", "season_stats", "player_info", "match_log", "venue_facts",
        "meta_notes", "extra_attrs", "audit_trail", "raw_feed", "summary_view",
        "lineup_data", "region_facts",
    ];
    for seg in &SEGMENTS[..replicas.min(SEGMENTS.len())] {
        build_segment(&mut db, spec, seg, &mut rng);
    }
    let has = |k: AntiPatternKind| spec.aps.contains(&k);

    // When a database exhibits BOTH No Primary Key and Generic Primary
    // Key (real Kaggle databases have many tables), a second key-less
    // table carries the former.
    if has(NoPrimaryKey) && has(GenericPrimaryKey) {
        db.create_table(
            TableSchema::new("raw_import")
                .column(Column::new("line_no", DataType::Int))
                .column(Column::new("content", DataType::Text)),
        )
        .unwrap();
        for i in 0..50 {
            db.insert("raw_import", vec![Value::Int(i), Value::text(format!("row {i}"))])
                .unwrap();
        }
    }

    // Clean companion table.
    db.create_table(
        TableSchema::new("source_info")
            .column(Column::new("source_key", DataType::Int).not_null())
            .column(Column::new("url", DataType::Text))
            .primary_key(&["source_key"]),
    )
    .unwrap();
    for i in 0..10 {
        db.insert(
            "source_info",
            vec![Value::Int(i), Value::text(format!("https://kaggle.com/ds/{i}"))],
        )
        .unwrap();
    }
    db
}

/// Build one AP-bearing table into `db`.
fn build_segment(db: &mut Database, spec: &KaggleSpec, table_name: &str, rng: &mut SmallRng) {
    let has = |k: AntiPatternKind| spec.aps.contains(&k);

    // Main table: columns assembled from the AP list.
    let mut schema = TableSchema::new(table_name);
    let mut pk_cols: Vec<&str> = Vec::new();
    if has(GenericPrimaryKey) {
        schema = schema.column(Column::new("id", DataType::Int).not_null());
        pk_cols.push("id");
    } else if !has(NoPrimaryKey) {
        schema = schema.column(Column::new("record_key", DataType::Int).not_null());
        pk_cols.push("record_key");
    } else {
        schema = schema.column(Column::new("seq", DataType::Int).not_null());
        // no PK declared
    }
    schema = schema.column(Column::new("title", DataType::Text));
    if has(DataInMetadata) {
        for i in 1..=3 {
            schema = schema.column(Column::new(format!("stat{i}"), DataType::Float));
        }
    }
    if has(IncorrectDataType) {
        schema = schema.column(Column::new("year", DataType::Text));
    }
    if has(MissingTimezone) {
        schema = schema.column(Column::new("recorded_at", DataType::Timestamp));
    }
    if has(MultiValuedAttribute) {
        schema = schema.column(Column::new("member_ids", DataType::Text));
    }
    if has(DenormalizedTable) {
        schema = schema.column(Column::new("team_name", DataType::Text));
    }
    if has(InformationDuplication) {
        schema = schema
            .column(Column::new("birth_date", DataType::Timestamp).with_timezone())
            .column(Column::new("age", DataType::Int));
    }
    if has(RedundantColumn) {
        schema = schema.column(Column::new("locale", DataType::Text));
    }
    if has(NoDomainConstraint) {
        schema = schema.column(Column::new("rating", DataType::Int));
    }
    if !pk_cols.is_empty() {
        schema = schema.primary_key(&pk_cols);
    }
    let arity = schema.columns.len();
    let col_names: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
    db.create_table(schema).unwrap();

    for i in 0..ROWS {
        let mut row: Row = Vec::with_capacity(arity);
        for name in &col_names {
            row.push(synth_value(name, i, rng));
        }
        db.insert(table_name, row).unwrap();
    }
}

const KAGGLE_SEED_SALT: u64 = 0x4B41_4747_4C45;

fn synth_value(col: &str, i: usize, rng: &mut SmallRng) -> Value {
    match col {
        "id" | "record_key" | "seq" => Value::Int(i as i64),
        "title" => Value::text(format!("entry number {i} ({})", rng.gen_range(10_000))),
        "year" => Value::text(format!("{}", 1990 + i % 30)),
        "recorded_at" => Value::Timestamp(1_500_000_000_000 + i as i64 * 60_000),
        "member_ids" => {
            let a = rng.gen_range(500);
            let b = rng.gen_range(500);
            Value::text(format!("M{a},M{b},M{}", rng.gen_range(500)))
        }
        "team_name" => Value::text(format!("team_{}", i % 25)),
        "birth_date" => Value::Timestamp(600_000_000_000 + (i as i64 % 40) * 31_536_000_000),
        "age" => Value::Int(20 + (i as i64 % 40)),
        "locale" => Value::text("en-us"),
        "rating" => Value::Int(1 + (i as i64 % 5)),
        s if s.starts_with("stat") => Value::Float(rng.gen_range(1000) as f64 / 10.0),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlcheck::{ContextBuilder, DataAnalysisConfig, Detector};

    #[test]
    fn thirty_one_specs() {
        assert_eq!(SPECS.len(), 31);
    }

    #[test]
    fn every_spec_builds_and_detects_its_aps() {
        for (i, spec) in SPECS.iter().enumerate() {
            let db = build(spec, i as u64);
            let ctx = ContextBuilder::new()
                .with_database(db, DataAnalysisConfig::default())
                .build();
            let report = Detector::default().detect(&ctx);
            let kinds = report.kinds();
            for expected in spec.aps {
                // DataInMetadata columns carry FLOAT stats → RoundingErrors
                // may also fire; we only require the *listed* kinds appear.
                assert!(
                    kinds.contains(expected),
                    "{}: expected {expected}, got {kinds:?}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn clean_spec_reports_nothing_listed() {
        // "Twitter Conv. about Black Panther" has zero APs in Table 6; the
        // builder must not inject data APs into it.
        let spec = SPECS.iter().find(|s| s.aps.is_empty()).unwrap();
        let db = build(spec, 30);
        let ctx = ContextBuilder::new()
            .with_database(db, DataAnalysisConfig::default())
            .build();
        let report = Detector::default().detect(&ctx);
        use AntiPatternKind::*;
        for k in [NoPrimaryKey, MultiValuedAttribute, RedundantColumn, MissingTimezone] {
            assert_eq!(report.count(k), 0, "unexpected {k}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build(&SPECS[0], 0);
        let b = build(&SPECS[0], 0);
        assert_eq!(a.total_rows(), b.total_rows());
    }
}
