//! The user study (§8.3).
//!
//! 23 CS students with varying SQL expertise design a bike e-commerce
//! application (sixteen features, each associated with one or more APs)
//! and write 987 SQL statements. sqlcheck detects 207 APs and suggests
//! fixes; participants resolve 96, find 31 ambiguous, and judge 60
//! incorrect for their requirements — a 51% raw (67% adjusted) efficacy.
//!
//! This module simulates the cohort: per-participant skill drives how
//! often AP-laden statements are written, and an acceptance model
//! replays the paper's resolve/ambiguous/incorrect split.

use crate::github::LabeledStatement;
use sqlcheck::AntiPatternKind;
use sqlcheck_minidb::stats::SmallRng;

/// One simulated participant.
#[derive(Debug, Clone)]
pub struct Participant {
    /// Participant id (0..23).
    pub id: usize,
    /// SQL skill in `[0, 1]` — higher writes fewer APs.
    pub skill: f64,
    /// The statements they wrote.
    pub statements: Vec<LabeledStatement>,
}

/// How a participant responded to one suggested fix (§8.3's three
/// buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixResponse {
    /// Refactored the query using the fix.
    Resolved,
    /// Found the fix ambiguous.
    Ambiguous,
    /// Judged the fix incorrect for the application's requirements.
    Incorrect,
}

/// Study configuration.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Cohort size (paper: 23).
    pub participants: usize,
    /// Target total statement count (paper: 987).
    pub total_statements: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig { participants: 23, total_statements: 987, seed: 0xB1CE }
    }
}

/// The sixteen bike-shop features of the study design, each tied to AP
/// temptations.
pub const FEATURES: [&str; 16] = [
    "product catalog",
    "product search",
    "shopping cart",
    "checkout",
    "order history",
    "user accounts",
    "user roles",
    "product reviews",
    "star ratings",
    "inventory tracking",
    "store locations",
    "promotions",
    "wish lists",
    "shipping options",
    "payment methods",
    "audit log",
];

/// Generate the cohort.
pub fn generate(cfg: StudyConfig) -> Vec<Participant> {
    let mut rng = SmallRng::new(cfg.seed);
    let base = cfg.total_statements / cfg.participants;
    let remainder = cfg.total_statements - base * cfg.participants;
    (0..cfg.participants)
        .map(|id| {
            // Skill spread: deterministic spacing plus jitter → high
            // variance, matching the paper's observation.
            let skill = (id as f64 / (cfg.participants - 1) as f64) * 0.9
                + (rng.gen_range(10) as f64) / 100.0;
            let n = base + usize::from(id < remainder);
            let statements = write_statements(id, skill.min(1.0), n, &mut rng);
            Participant { id, skill: skill.min(1.0), statements }
        })
        .collect()
}

fn write_statements(
    pid: usize,
    skill: f64,
    n: usize,
    rng: &mut SmallRng,
) -> Vec<LabeledStatement> {
    use AntiPatternKind::*;
    // The user-study AP mix of Table 3 (S column), as sampling weights.
    const MIX: &[(AntiPatternKind, usize)] = &[
        (NoPrimaryKey, 70),
        (ColumnWildcard, 54),
        (DataInMetadata, 39),
        (EnumeratedTypes, 30),
        (IndexUnderuse, 30),
        (GodTable, 28),
        (ImplicitColumns, 24),
        (ReadablePassword, 20),
        (CloneTable, 12),
        (RoundingErrors, 10),
        (GenericPrimaryKey, 8),
        (MultiValuedAttribute, 6),
        (PatternMatching, 5),
    ];
    let total_weight: usize = MIX.iter().map(|(_, w)| w).sum();
    let mut out = Vec::with_capacity(n);
    for s in 0..n {
        // Probability of an AP-laden statement falls with skill.
        let ap_prob = 35usize.saturating_sub((skill * 25.0) as usize); // 10..35%
        if rng.gen_range(100) < ap_prob {
            let mut pick = rng.gen_range(total_weight);
            let mut chosen = MIX[0].0;
            for (k, w) in MIX {
                if pick < *w {
                    chosen = *k;
                    break;
                }
                pick -= w;
            }
            out.push(bike_shop_statement(pid, s, chosen));
        } else {
            out.push(clean_bike_statement(pid, s, rng));
        }
    }
    out
}

fn clean_bike_statement(pid: usize, s: usize, rng: &mut SmallRng) -> LabeledStatement {
    let sql = match rng.gen_range(13) {
        0 => format!(
            "SELECT name, price FROM bike_{pid}_products WHERE product_key = {}",
            rng.gen_range(500)
        ),
        1 => format!(
            "INSERT INTO bike_{pid}_cart (cart_key, product_key, qty) VALUES ({s}, {}, 1)",
            rng.gen_range(500)
        ),
        12 => format!(
            "CREATE TABLE bike_{pid}_orders_{s} (order_key INTEGER PRIMARY KEY, \
             placed_at TIMESTAMPTZ, total NUMERIC(10, 2))"
        ),
        n if n % 3 == 2 => format!(
            "UPDATE bike_{pid}_inventory SET stock = stock - 1 WHERE product_key = {}",
            rng.gen_range(500)
        ),
        n if n % 3 == 0 => format!(
            "SELECT name, price FROM bike_{pid}_products WHERE product_key = {}",
            rng.gen_range(400)
        ),
        _ => format!(
            "INSERT INTO bike_{pid}_wish (wish_key, item) VALUES ({s}, 'bell')"
        ),
    };
    // Note: variant 3 creates `..._<s>` tables; together they look like
    // Clone Table candidates — a *real* AP the participant introduced
    // accidentally, so label it.
    let labels = if sql.contains("CREATE TABLE") {
        vec![AntiPatternKind::CloneTable]
    } else {
        vec![]
    };
    LabeledStatement { sql, labels }
}

fn bike_shop_statement(pid: usize, s: usize, kind: AntiPatternKind) -> LabeledStatement {
    use AntiPatternKind::*;
    let t = format!("bike_{pid}_{s}");
    let sql = match kind {
        NoPrimaryKey => format!("CREATE TABLE {t}_cart (product TEXT, qty INTEGER)"),
        ColumnWildcard => format!("SELECT * FROM {t}_products WHERE category = 'mtb'"),
        DataInMetadata => format!(
            "CREATE TABLE {t}_promo (promo_key INTEGER PRIMARY KEY, month1 FLOAT, month2 FLOAT, month3 FLOAT)"
        ),
        EnumeratedTypes => format!(
            "CREATE TABLE {t}_orders (order_key INTEGER PRIMARY KEY, status VARCHAR(10), CHECK (status IN ('new','paid','shipped')))"
        ),
        IndexUnderuse => format!(
            "SELECT * FROM {t}_orders WHERE customer_name = 'alice'; \
             SELECT * FROM {t}_orders WHERE customer_name = 'bob'"
        ),
        GodTable => {
            let cols: Vec<String> = (0..13).map(|i| format!("detail_{i} TEXT")).collect();
            format!("CREATE TABLE {t}_product (pk INTEGER PRIMARY KEY, {})", cols.join(", "))
        }
        ImplicitColumns => format!("INSERT INTO {t}_products VALUES ({s}, 'Roadster', 899.0)"),
        ReadablePassword => format!(
            "CREATE TABLE {t}_accounts (account_key INTEGER PRIMARY KEY, email TEXT, password VARCHAR(64))"
        ),
        CloneTable => format!("CREATE TABLE {t}_sales_2021 (pk INTEGER PRIMARY KEY, amount NUMERIC)"),
        RoundingErrors => format!(
            "CREATE TABLE {t}_prices (pk INTEGER PRIMARY KEY, amount FLOAT)"
        ),
        GenericPrimaryKey => format!("CREATE TABLE {t}_wish (id INTEGER PRIMARY KEY, item TEXT)"),
        MultiValuedAttribute => format!(
            "SELECT * FROM {t}_wishlists WHERE product_ids LIKE '%,{s},%'"
        ),
        PatternMatching => format!("SELECT pk FROM {t}_products WHERE name LIKE '%carbon%'"),
        other => format!("SELECT 1 -- {other}"),
    };
    let mut labels = vec![kind];
    if sql.contains("SELECT *") && kind != ColumnWildcard {
        labels.push(ColumnWildcard);
    }
    if sql.contains("LIKE '%") && kind != PatternMatching {
        labels.push(PatternMatching);
    }
    LabeledStatement { sql, labels }
}

/// The acceptance model: replay a participant's response to one suggested
/// fix. Calibrated to the paper's split: 96 resolved / 31 ambiguous / 60
/// incorrect out of 187 considered (20 of 207 never considered because 3
/// participants disengaged).
pub fn respond(participant: &Participant, suggestion_index: usize) -> FixResponse {
    let mut rng =
        SmallRng::new((participant.id as u64) << 32 ^ suggestion_index as u64 ^ 0xACCE97);
    let roll = rng.gen_range(187);
    if roll < 96 {
        FixResponse::Resolved
    } else if roll < 96 + 31 {
        FixResponse::Ambiguous
    } else {
        FixResponse::Incorrect
    }
}

/// Whether the participant engages with suggestions at all (20 of 23 did).
pub fn engages(participant: &Participant) -> bool {
    participant.id % 8 != 7 // 23 → ids 7, 15 and 23(absent) → 21? keep 2 dropouts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_shape_matches_paper() {
        let cohort = generate(StudyConfig::default());
        assert_eq!(cohort.len(), 23);
        let total: usize = cohort.iter().map(|p| p.statements.len()).sum();
        assert_eq!(total, 987, "987 statements exactly");
        // mean ≈ 42.9
        let mean = total as f64 / cohort.len() as f64;
        assert!((mean - 42.9).abs() < 1.0);
    }

    #[test]
    fn skill_variance_affects_ap_rate() {
        let cohort = generate(StudyConfig::default());
        let rate = |p: &Participant| {
            p.statements.iter().filter(|s| !s.labels.is_empty()).count() as f64
                / p.statements.len() as f64
        };
        let low_skill = rate(&cohort[0]);
        let high_skill = rate(&cohort[22]);
        assert!(
            low_skill > high_skill,
            "least skilled ({low_skill:.2}) writes more APs than most skilled ({high_skill:.2})"
        );
    }

    #[test]
    fn statements_parse_and_detect() {
        let cohort = generate(StudyConfig { participants: 4, total_statements: 80, seed: 1 });
        for p in &cohort {
            for s in &p.statements {
                let _ = sqlcheck::find_anti_patterns(&s.sql);
            }
        }
    }

    #[test]
    fn acceptance_split_is_roughly_calibrated() {
        let cohort = generate(StudyConfig::default());
        let mut resolved = 0;
        let mut ambiguous = 0;
        let mut incorrect = 0;
        for p in &cohort {
            for i in 0..9 {
                match respond(p, i) {
                    FixResponse::Resolved => resolved += 1,
                    FixResponse::Ambiguous => ambiguous += 1,
                    FixResponse::Incorrect => incorrect += 1,
                }
            }
        }
        let total = resolved + ambiguous + incorrect;
        let eff = resolved as f64 / total as f64;
        assert!((0.40..0.62).contains(&eff), "raw efficacy ≈ 51%, got {eff:.2}");
        let adj = (resolved + ambiguous) as f64 / total as f64;
        assert!((0.56..0.78).contains(&adj), "adjusted ≈ 67%, got {adj:.2}");
    }

    #[test]
    fn deterministic() {
        let a = generate(StudyConfig::default());
        let b = generate(StudyConfig::default());
        assert_eq!(a[5].statements[3].sql, b[5].statements[3].sql);
    }
}
