//! Meta-crate re-exporting the SQLCheck reproduction workspace.
pub use sqlcheck;
pub use sqlcheck_dbdeo as dbdeo;
pub use sqlcheck_minidb as minidb;
pub use sqlcheck_parser as parser;
pub use sqlcheck_workload as workload;
