//! Quickstart: the paper's §7 interactive-shell workflow in Rust.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sqlcheck::{find_anti_patterns, SqlCheck};

fn main() {
    // One-shot API — the paper's `find_anti_patterns(query)`:
    let query = "INSERT INTO Users VALUES (1, 'foo')";
    println!("query: {query}\n");
    for d in find_anti_patterns(query) {
        println!("  -> {d}");
    }

    // The full pipeline over a small script: detect, rank, fix.
    let script = "
        CREATE TABLE Users (
            User_ID VARCHAR(10) PRIMARY KEY,
            Name TEXT,
            Role VARCHAR(5),
            password VARCHAR(64),
            CHECK (Role IN ('R1','R2','R3'))
        );
        SELECT * FROM Users WHERE Name LIKE '%smith%';
        INSERT INTO Users VALUES ('U1', 'Smith', 'R1', 'hunter2');
    ";
    println!("\nfull pipeline:\n");
    let outcome = SqlCheck::new().check_script(script);
    print!("{}", outcome.summary());
}
