//! Audit the GlobaLeaks application end-to-end (the paper's §2.1 case
//! study): build the AP-laden deployment, attach its live database for
//! data analysis, rank the findings under both Fig 7a weight
//! configurations, and print the suggested fixes — then demonstrate the
//! measured speedup of applying the multi-valued-attribute fix.
//!
//! ```text
//! cargo run --release --example globaleaks_audit
//! ```

use sqlcheck::{RankWeights, SqlCheck};
use sqlcheck_minidb::engine::timed;
use sqlcheck_workload::globaleaks::*;

fn main() {
    let scale = Scale { users: 5_000, tenants: 500, memberships: 2, seed: 0x61EA };
    println!("building GlobaLeaks deployment ({} users, {} tenants)...", scale.users, scale.tenants);
    let db = build_ap_database(scale);

    // Detect + rank + fix, with the database attached (data analysis on).
    let outcome = SqlCheck::new()
        .with_weights(RankWeights::C1)
        .with_database(db.clone())
        .check_script(&sql_trace());

    println!("\n=== ranked anti-patterns (C1: read-heavy weights) ===");
    print!("{}", outcome.summary());

    let outcome_c2 = SqlCheck::new()
        .with_weights(RankWeights::C2)
        .with_database(db.clone())
        .check_script(&sql_trace());
    println!("\n=== top-5 under C2 (hybrid weights) — note the reordering ===");
    for (i, r) in outcome_c2.ranked().iter().take(5).enumerate() {
        println!("{:>3}. [{:.3}] {} @ {}", i + 1, r.score, r.detection.kind, r.detection.locus);
    }

    // Show the fix paying off: Task #1 before and after refactoring.
    println!("\n=== applying the MVA fix: Task #1 before/after ===");
    let fixed = build_fixed_database(scale);
    let (rows_ap, d_ap) = timed(|| task1_ap(&db, "U7"));
    let (rows_fixed, d_fixed) = timed(|| task1_fixed(&fixed, "U7"));
    assert_eq!(rows_ap.len(), rows_fixed.len());
    println!(
        "  AP (LIKE scan):     {:>10.6}s  ({} rows)",
        d_ap.as_secs_f64(),
        rows_ap.len()
    );
    println!(
        "  fixed (index join): {:>10.6}s  ({} rows)",
        d_fixed.as_secs_f64(),
        rows_fixed.len()
    );
    println!(
        "  speedup: {:.0}x  (paper: 636x at 10M rows on PostgreSQL)",
        d_ap.as_secs_f64() / d_fixed.as_secs_f64().max(1e-9)
    );
}
