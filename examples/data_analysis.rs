//! Data-analysis-only detection over the 31 Kaggle-style databases
//! (the paper's §8.4 / Table 5 experiment): no queries at all — sqlcheck
//! profiles each database's data and flags the Data-category APs.
//!
//! ```text
//! cargo run --release --example data_analysis
//! ```

use sqlcheck::{ContextBuilder, DataAnalysisConfig, Detector};
use sqlcheck_workload::kaggle;

fn main() {
    let mut grand_total = 0usize;
    println!("{:<36} {:>5}  detected kinds", "database", "#AP");
    println!("{}", "-".repeat(90));
    for (i, spec) in kaggle::SPECS.iter().enumerate() {
        let db = kaggle::build(spec, i as u64);
        let ctx = ContextBuilder::new()
            .with_database(db, DataAnalysisConfig::default())
            .build();
        let report = Detector::default().detect(&ctx);
        let kinds: Vec<&str> = report.kinds().iter().map(|k| k.name()).collect();
        println!("{:<36} {:>5}  {}", spec.name, report.detections.len(), kinds.join(", "));
        grand_total += report.detections.len();
    }
    println!("{}", "-".repeat(90));
    println!("{:<36} {:>5}  (paper: 200 across 31 databases)", "Total", grand_total);

    // Drill into one database to show the evidence the data analyzer saw.
    let spec = &kaggle::SPECS[0]; // Board Games
    println!("\n=== evidence for '{}' ===", spec.name);
    let db = kaggle::build(spec, 0);
    let ctx = ContextBuilder::new()
        .with_database(db, DataAnalysisConfig::default())
        .build();
    for d in Detector::default().detect(&ctx).detections {
        println!("  {d}");
    }
}
