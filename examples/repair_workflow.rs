//! The repair engine in action (§6): detect an anti-pattern, apply the
//! suggested rewrite, and verify the rewritten statement is AP-free —
//! the iterative workflow the user-study participants followed.
//!
//! ```text
//! cargo run --example repair_workflow
//! ```

use sqlcheck::{AntiPatternKind, Fix, SqlCheck};

fn main() {
    let script = "
        CREATE TABLE Tenant (
            Tenant_ID VARCHAR(10) PRIMARY KEY,
            Zone_ID VARCHAR(30) NOT NULL,
            Active BOOLEAN,
            User_IDs TEXT
        );
        INSERT INTO Tenant VALUES ('T1', 'Z1', TRUE, 'U1,U2');
        SELECT * FROM Tenant WHERE User_IDs LIKE '[[:<:]]U1[[:>:]]';
    ";
    println!("auditing:\n{script}");
    let outcome = SqlCheck::new().check_script(script);

    let mut remaining = script.to_string();
    for sf in outcome.fixes() {
        println!("\n[{}] {}", sf.detection.kind, sf.detection.message);
        match &sf.fix {
            Fix::Rewrite { original, fixed } => {
                println!("  rewrite:");
                println!("    - {original}");
                println!("    + {fixed}");
                remaining = remaining.replace(original.trim(), fixed);
            }
            Fix::SchemaChange { statements, impacted_queries } => {
                println!("  schema change:");
                for s in statements {
                    println!("    + {s}");
                }
                for (idx, q) in impacted_queries {
                    println!("    ~ statement #{idx} becomes: {q}");
                }
            }
            Fix::Textual { advice } => println!("  advice: {advice}"),
        }
    }

    // Re-check: the INSERT with an explicit column list no longer carries
    // the Implicit Columns AP.
    let recheck = SqlCheck::new().check_script(&remaining);
    let implicit_before = outcome
        .report
        .count(AntiPatternKind::ImplicitColumns);
    let implicit_after = recheck.report.count(AntiPatternKind::ImplicitColumns);
    println!(
        "\nImplicit Columns before: {implicit_before}, after applying rewrites: {implicit_after}"
    );
    assert!(implicit_after < implicit_before, "the rewrite eliminated the AP");
}
