//! Mini reproduction of the §8.1 corpus study: generate a labelled
//! repository corpus, run sqlcheck (both configurations) and the dbdeo
//! baseline, and print the Table 2 accuracy comparison.
//!
//! ```text
//! cargo run --release --example corpus_study
//! ```

use sqlcheck_bench::experiments::table2;
use sqlcheck_workload::github::CorpusConfig;

fn main() {
    let cfg = CorpusConfig { repositories: 120, statements_per_repo: 80, seed: 0x9178B };
    println!(
        "generating {} repositories × {} statements...",
        cfg.repositories, cfg.statements_per_repo
    );
    let result = table2::run(cfg);
    println!("\n=== Table 2: per-AP detection comparison ===");
    print!("{}", table2::render(&result));
    println!("\n=== Table 3 (GitHub columns): distribution D vs S ===");
    print!("{}", table2::render_histogram(&result));
}
