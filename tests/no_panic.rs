//! **No-panic property suite** — the degradation contract under fire.
//!
//! The pipeline's robustness claims are behavioural, not structural:
//! *any* byte sequence flows through split → parse → detect → rank → fix
//! without a panic, degradation is always *reported* (never silent), and
//! the diagnostics a run emits are deterministic — independent of worker
//! thread count and cache state. These properties run over
//! deterministically generated random cases (the build environment has
//! no `proptest`; same seeds, same cases, every run).

use sqlcheck::{
    BatchOptions, CheckOutcome, CustomRule, Detection, DiagKind, SqlCheck, WorkloadOutcome,
};
use sqlcheck_minidb::stats::SmallRng;

const CASES: usize = 64;

/// Raw arbitrary bytes, decoded lossily the way a CLI `--file` read is.
fn arbitrary_bytes(rng: &mut SmallRng, max_len: usize) -> String {
    let len = rng.gen_range(max_len + 1);
    let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// SQL-shaped text with multibyte characters mixed in, so truncation can
/// land mid-codepoint.
fn multibyte_sqlish(rng: &mut SmallRng) -> String {
    let mut s = String::new();
    for _ in 0..(1 + rng.gen_range(6)) {
        s.push_str(match rng.gen_range(5) {
            0 => "SELECT * FROM café WHERE name = '中文值';\n",
            1 => "INSERT INTO tbl (a, é) VALUES (1, 'naïve');\n",
            2 => "CREATE TABLE 表 (id INT, note TEXT);\n",
            3 => "UPDATE t SET c = 'Ω≈ç√∫' WHERE id = 3;\n",
            _ => "DELIMITER $$\nCREATE TRIGGER trg BEFORE INSERT ON t\nBEGIN SELECT 1; END$$\nDELIMITER ;\n",
        });
    }
    s
}

/// The deterministic fingerprint of a run's observable degradation state:
/// every diagnostic (kind, detail, statement attribution) in order, plus
/// the detection list. Equal fingerprints mean equal user-visible output.
fn fingerprint(outcome: &CheckOutcome) -> String {
    let mut s = String::new();
    for d in &outcome.diagnostics {
        s.push_str(&format!("{:?}|{}|{:?};", d.kind, d.detail, d.statement));
    }
    s.push('#');
    for r in outcome.ranked() {
        s.push_str(&format!("{:?};", r.detection));
    }
    s
}

fn workload_fingerprint(w: &WorkloadOutcome) -> String {
    format!(
        "{}#deg:{}/{}#cov:{:.6}#diag:{:?}#fail:{}",
        fingerprint(&w.outcome),
        w.stats.degraded_statements,
        w.stats.degraded_uniques,
        w.stats.parse_coverage(),
        w.stats.diag_counts,
        w.stats.rule_failures,
    )
}

fn opts_at(threads: usize) -> BatchOptions {
    BatchOptions { parallel: threads > 1, threads: Some(threads), ..BatchOptions::default() }
}

/// Arbitrary bytes through both entry points, at every thread count,
/// with and without an incremental cache: no panics, and the degradation
/// fingerprint is identical across all configurations.
#[test]
fn arbitrary_bytes_are_total_and_deterministic() {
    let mut rng = SmallRng::new(0x0B5E55);
    for case in 0..CASES {
        let input = arbitrary_bytes(&mut rng, 600);
        let baseline = SqlCheck::new().check_workload(&input, &opts_at(1));
        let base_fp = workload_fingerprint(&baseline);
        for threads in [2, 4] {
            let run = SqlCheck::new().check_workload(&input, &opts_at(threads));
            assert_eq!(
                workload_fingerprint(&run),
                base_fp,
                "case {case}: {threads}-thread run diverged"
            );
        }
        let cached_tool = SqlCheck::new().with_cache(256);
        let cold = cached_tool.check_workload(&input, &opts_at(2));
        let warm = cached_tool.check_workload(&input, &opts_at(2));
        assert_eq!(workload_fingerprint(&cold), base_fp, "case {case}: cold cached run");
        assert_eq!(workload_fingerprint(&warm), base_fp, "case {case}: warm cached run");
        let script_fp = fingerprint(&SqlCheck::new().check_script(&input));
        assert_eq!(
            fingerprint(&SqlCheck::new().check_script(&input)),
            script_fp,
            "case {case}: check_script non-deterministic"
        );
    }
}

/// UTF-8 truncated at arbitrary byte offsets (then decoded lossily, as
/// any byte-oriented reader would) never panics and never loses the
/// DELIMITER-fallback diagnostic non-deterministically.
#[test]
fn truncated_utf8_is_total() {
    let mut rng = SmallRng::new(0x7A47C);
    for case in 0..CASES {
        let full = multibyte_sqlish(&mut rng);
        let cut = rng.gen_range(full.len() + 1);
        let input = String::from_utf8_lossy(&full.as_bytes()[..cut]).into_owned();
        let seq = SqlCheck::new().check_workload(&input, &opts_at(1));
        let par = SqlCheck::new().check_workload(&input, &opts_at(4));
        assert_eq!(
            workload_fingerprint(&seq),
            workload_fingerprint(&par),
            "case {case} (cut at byte {cut})"
        );
    }
}

/// The arena parser itself — below the batch pipeline — is total on
/// arbitrary and multibyte input: parse, annotate over the arena, and
/// render, all without panicking; and parsing the same bytes twice
/// produces structurally identical output (the thread-local arena
/// handoff leaks nothing between statements).
#[test]
fn arena_parser_is_total_and_deterministic() {
    let mut rng = SmallRng::new(0xA12E4A);
    for case in 0..CASES {
        let input = if case % 2 == 0 {
            arbitrary_bytes(&mut rng, 400)
        } else {
            multibyte_sqlish(&mut rng)
        };
        let a = sqlcheck_parser::parse_one(&input);
        let ann = sqlcheck_parser::annotate(&a.stmt, &a.arena);
        let rendered = a.to_sql();
        let b = sqlcheck_parser::parse_one(&input);
        assert_eq!(
            format!("{:?}", a.stmt),
            format!("{:?}", b.stmt),
            "case {case}: non-deterministic parse"
        );
        assert_eq!(a.arena.len(), b.arena.len(), "case {case}: arena size diverged");
        assert_eq!(rendered, b.to_sql(), "case {case}: non-deterministic render");
        std::hint::black_box(ann);
    }
}

/// Pathological nesting (10k parens, deep BEGIN towers) completes in
/// bounded time through the full pipeline and reports its own
/// degradation instead of blowing the stack.
#[test]
fn pathological_nesting_is_bounded_and_reported() {
    let deep_parens =
        format!("SELECT {}1{};", "(".repeat(10_000), ")".repeat(10_000));
    let outcome = SqlCheck::new().check_script(&deep_parens);
    let kinds: Vec<DiagKind> = outcome.diagnostics.iter().map(|d| d.kind).collect();
    assert!(kinds.contains(&DiagKind::OverLimit), "{kinds:?}");

    let mut towers = String::new();
    for _ in 0..200 {
        towers.push_str("BEGIN ");
    }
    towers.push_str("SELECT 1;");
    for _ in 0..200 {
        towers.push_str(" END;");
    }
    let w = SqlCheck::new().check_workload(&towers, &opts_at(4));
    assert!(
        w.stats.diag_counts[DiagKind::OverLimit.index()] > 0
            || w.stats.diag_counts[DiagKind::ParseDegraded.index()] > 0
            || w.stats.diag_counts[DiagKind::UnterminatedBlock.index()] > 0,
        "deep block tower degraded silently: {:?}",
        w.stats.diag_counts
    );
}

/// A custom rule that panics on every call — the fault-injection probe.
struct FaultyRule;

impl CustomRule for FaultyRule {
    fn name(&self) -> &str {
        "fault-injection-rule"
    }

    fn detect(&self, _ctx: &sqlcheck::Context) -> Vec<Detection> {
        panic!("injected fault: this rule always panics");
    }
}

/// Fault injection: a panicking registered rule is isolated — the run
/// completes, a `RuleFailed` diagnostic names the rule, and everything
/// else (detections, ranking, parse diagnostics) is byte-identical to a
/// run without the faulty rule, at every thread count.
#[test]
fn faulty_rule_is_isolated_everywhere() {
    let mut rng = SmallRng::new(0xFA017);
    for case in 0..16 {
        let n = 5 + rng.gen_range(20);
        let mut script = String::from("CREATE TABLE t (a INT, b TEXT);\n");
        for i in 0..n {
            script.push_str(&format!("SELECT * FROM t WHERE a = {i};\n"));
        }
        for threads in [1, 2, 4] {
            let clean = SqlCheck::new().check_workload(&script, &opts_at(threads));
            let faulty = SqlCheck::new()
                .with_rule(Box::new(FaultyRule))
                .check_workload(&script, &opts_at(threads));
            let clean_dets: Vec<String> =
                clean.outcome.ranked().iter().map(|r| format!("{:?}", r.detection)).collect();
            let faulty_dets: Vec<String> =
                faulty.outcome.ranked().iter().map(|r| format!("{:?}", r.detection)).collect();
            assert_eq!(clean_dets, faulty_dets, "case {case}, {threads} thread(s)");
            assert!(
                faulty.outcome.diagnostics.iter().any(|d| d.kind == DiagKind::RuleFailed
                    && d.detail.contains("fault-injection-rule")),
                "case {case}, {threads} thread(s): no RuleFailed naming the rule: {:?}",
                faulty.outcome.diagnostics
            );
            assert!(faulty.stats.rule_failures >= 1, "case {case}");
            assert_eq!(clean.stats.rule_failures, 0, "case {case}");
        }
        // Same isolation through the plain script entry point.
        let clean = SqlCheck::new().check_script(&script);
        let faulty = SqlCheck::new().with_rule(Box::new(FaultyRule)).check_script(&script);
        let ka: Vec<String> =
            clean.ranked().iter().map(|r| format!("{:?}", r.detection)).collect();
        let kb: Vec<String> =
            faulty.ranked().iter().map(|r| format!("{:?}", r.detection)).collect();
        assert_eq!(ka, kb, "case {case}: check_script detections");
        assert!(faulty
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::RuleFailed && d.detail.contains("fault-injection-rule")));
    }
}

/// A panicking rule does not poison the shared incremental cache: a
/// faulty run followed by a clean run on the same tool still produces
/// the clean baseline output.
#[test]
fn faulty_rule_does_not_poison_the_cache() {
    let script = "CREATE TABLE t (a INT);\nSELECT * FROM t;\nSELECT a FROM t WHERE a = 1;\n";
    let baseline = SqlCheck::new().check_workload(script, &opts_at(2));
    let cached = SqlCheck::new().with_cache(256).with_rule(Box::new(FaultyRule));
    let _ = cached.check_workload(script, &opts_at(2));
    let again = cached.check_workload(script, &opts_at(2));
    let base: Vec<String> =
        baseline.outcome.ranked().iter().map(|r| format!("{:?}", r.detection)).collect();
    let warm: Vec<String> =
        again.outcome.ranked().iter().map(|r| format!("{:?}", r.detection)).collect();
    assert_eq!(base, warm, "warm faulty-tool run lost or duplicated detections");
}
