//! Failure injection: malformed SQL, hostile dialect soup, and
//! constraint-violating data must never panic any layer.

use sqlcheck::{find_anti_patterns, SqlCheck};
use sqlcheck_minidb::prelude::*;

#[test]
fn hostile_sql_never_panics_the_pipeline() {
    let cases = [
        "",
        ";",
        "SELEC * FORM t",
        "SELECT ((((((((",
        "CREATE TABLE (((",
        "INSERT INTO",
        "UPDATE SET WHERE",
        "'unterminated",
        "/* unterminated comment",
        "$tag$ unterminated dollar quote",
        "SELECT * FROM t WHERE a = 'x\\' AND b = 1",
        "SELECT \u{0} \u{7f} FROM \u{1}",
        "ALTER TABLE t ADD CONSTRAINT CHECK CHECK (CHECK)",
        "CREATE TABLE t (a INT,,,, b INT)",
        "SELECT 1 UNION SELECT 2 UNION SELECT",
        "INSERT INTO t VALUES ((((1))))",
        "SELECT * FROM a JOIN JOIN b",
        "営業 テーブル FROM SELECT",
    ];
    for sql in cases {
        let _ = find_anti_patterns(sql);
        let _ = SqlCheck::new().check_script(sql);
    }
}

#[test]
fn deeply_nested_expressions_are_handled() {
    let mut sql = String::from("SELECT ");
    for _ in 0..200 {
        sql.push('(');
    }
    sql.push('1');
    for _ in 0..200 {
        sql.push(')');
    }
    sql.push_str(" FROM t");
    let _ = find_anti_patterns(&sql);
}

#[test]
fn very_long_scripts_are_handled() {
    let mut script = String::new();
    for i in 0..2_000 {
        script.push_str(&format!("SELECT c{i} FROM t{i} WHERE k = {i};\n"));
    }
    let outcome = SqlCheck::new().check_script(&script);
    assert_eq!(outcome.context.len(), 2_000);
}

#[test]
fn engine_rejects_bad_data_without_corruption() {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new("t")
            .column(Column::new("id", DataType::Int).not_null())
            .column(Column::new("score", DataType::Int))
            .primary_key(&["id"])
            .check(Check::Range {
                name: "score_range".into(),
                column: "score".into(),
                min: Value::Int(0),
                max: Value::Int(100),
            }),
    )
    .unwrap();
    db.insert("t", vec![Value::Int(1), Value::Int(50)]).unwrap();

    // Every rejected insert leaves the table untouched.
    let attempts: Vec<(Row, &str)> = vec![
        (vec![Value::Int(1), Value::Int(60)], "duplicate pk"),
        (vec![Value::Null, Value::Int(60)], "null pk"),
        (vec![Value::Int(2), Value::Int(101)], "check violation"),
        (vec![Value::Int(3)], "arity"),
        (vec![Value::text("x"), Value::Int(1)], "type mismatch"),
    ];
    for (row, why) in attempts {
        assert!(db.insert("t", row).is_err(), "{why} must fail");
        assert_eq!(db.table("t").unwrap().len(), 1, "{why} must not mutate");
    }
    // Index is still consistent.
    let t = db.table("t").unwrap();
    assert_eq!(t.index("t_pkey").unwrap().len(), 1);
}

#[test]
fn data_analysis_on_empty_and_degenerate_tables() {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new("empty")
            .column(Column::new("a", DataType::Text)),
    )
    .unwrap();
    db.create_table(TableSchema::new("no_columns_used").column(Column::new("x", DataType::Int)))
        .unwrap();
    db.insert("no_columns_used", vec![Value::Null]).unwrap();
    let outcome = SqlCheck::new().with_database(db).check_script("SELECT 1");
    // Must not panic; tiny tables stay below min_rows so no noisy data APs.
    assert_eq!(
        outcome
            .report
            .detections
            .iter()
            .filter(|d| d.source == sqlcheck::DetectionSource::DataAnalysis
                && d.kind != sqlcheck::AntiPatternKind::NoPrimaryKey)
            .count(),
        0
    );
}

#[test]
fn dialect_soup_parses_totally() {
    let script = r#"
        CREATE TABLE `backticks` (a INT, PRIMARY KEY (a));
        CREATE TABLE [brackets] ([weird col] NVARCHAR(10));
        SELECT "quoted"."col" FROM "quoted" WHERE x = $1 AND y = :named AND z = %(py)s;
        INSERT INTO t VALUES ($tag$body with 'quotes'$tag$);
        SELECT a FROM t WHERE b <=> c AND d RLIKE 'x' LIMIT 5 OFFSET 10;
    "#;
    let parsed = sqlcheck_parser::parse(script);
    assert_eq!(parsed.len(), 5);
    let _ = SqlCheck::new().check_script(script);
}
