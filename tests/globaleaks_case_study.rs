//! The §2.1 GlobaLeaks case study, end-to-end: the AP-laden deployment is
//! audited with data analysis attached; the refactored deployment must
//! come back (much) cleaner; the query tasks agree across designs.

use sqlcheck::{AntiPatternKind, SqlCheck};
use sqlcheck_workload::globaleaks::*;

fn tiny() -> Scale {
    Scale { users: 400, tenants: 60, memberships: 2, seed: 9 }
}

#[test]
fn ap_deployment_reports_the_case_study_aps_with_data_analysis() {
    let db = build_ap_database(tiny());
    let outcome = SqlCheck::new().with_database(db).check_script(&sql_trace());
    let kinds = outcome.report.kinds();
    // The data analyzer must confirm the MVA on Tenants.User_IDs even
    // without relying on the query heuristics (§4.2).
    assert!(outcome.report.detections.iter().any(|d| {
        d.kind == AntiPatternKind::MultiValuedAttribute
            && matches!(&d.locus, sqlcheck::Locus::Column { table, column }
                if table.eq_ignore_ascii_case("tenants") && column.eq_ignore_ascii_case("user_ids"))
    }), "data rule pinpoints Tenants.User_IDs: {kinds:?}");
    assert!(kinds.contains(&AntiPatternKind::EnumeratedTypes));
    assert!(kinds.contains(&AntiPatternKind::NoForeignKey));
    assert!(kinds.contains(&AntiPatternKind::IndexOveruse));
}

#[test]
fn refactored_deployment_is_cleaner() {
    let ap_db = build_ap_database(tiny());
    let fixed_db = build_fixed_database(tiny());
    // Audit only the data (no query trace) so the comparison isolates the
    // schema/data quality.
    let ap = SqlCheck::new().with_database(ap_db).check_script("");
    let fixed = SqlCheck::new().with_database(fixed_db).check_script("");
    assert!(
        fixed.report.detections.len() < ap.report.detections.len(),
        "refactored: {} vs AP: {}",
        fixed.report.detections.len(),
        ap.report.detections.len()
    );
    assert_eq!(
        fixed.report.count(AntiPatternKind::MultiValuedAttribute),
        0,
        "the intersection table eliminated the MVA"
    );
}

#[test]
fn tasks_agree_between_designs() {
    let scale = tiny();
    let ap = build_ap_database(scale);
    let fixed = build_fixed_database(scale);
    for u in 0..20 {
        let user = format!("U{u}");
        assert_eq!(
            task1_ap(&ap, &user).len(),
            task1_fixed(&fixed, &user).len(),
            "task1 answer for {user}"
        );
    }
    for t in 0..10 {
        let tenant = format!("T{t}");
        assert_eq!(
            task2_ap(&ap, &tenant).len(),
            task2_fixed(&fixed, &tenant).len(),
            "task2 answer for {tenant}"
        );
    }
}

#[test]
fn referential_integrity_only_in_fixed_design() {
    use sqlcheck_minidb::prelude::*;
    let mut fixed = build_fixed_database(tiny());
    // Inserting a Hosting row for a non-existent user must fail.
    let err = fixed
        .insert("Hosting", vec![Value::text("U999999"), Value::text("T1")])
        .unwrap_err();
    assert!(matches!(err, DbError::ForeignKey { .. }));

    let mut ap = build_ap_database(tiny());
    // The AP design happily accepts a dangling questionnaire.
    ap.insert(
        "Questionnaire",
        vec![
            Value::Int(999_999),
            Value::text("T_DOES_NOT_EXIST"),
            Value::text("q"),
            Value::Bool(true),
        ],
    )
    .expect("no FK, no enforcement");
}

#[test]
fn deleting_a_user_cascades_in_fixed_design_only() {
    use sqlcheck_minidb::prelude::*;
    let scale = tiny();
    let mut fixed = build_fixed_database(scale);
    let before = fixed.table("Hosting").unwrap().len();
    let n = fixed
        .delete_where("Users", &PExpr::col_eq(0, Value::text("U3")))
        .unwrap();
    assert_eq!(n, 1);
    let after = fixed.table("Hosting").unwrap().len();
    assert!(after < before, "cascade removed hosting rows: {before} -> {after}");
    assert!(task1_fixed(&fixed, "U3").is_empty());

    // In the AP design the list still contains U3 until manual surgery.
    let ap = build_ap_database(scale);
    assert!(
        !task1_ap(&ap, "U3").is_empty(),
        "stale membership persists in the comma-separated list"
    );
}
