//! Cross-crate integration: parser → context → detect → rank → fix →
//! render → re-detect.

use sqlcheck::{
    AntiPatternKind, ContextBuilder, DetectionConfig, Detector, Fix, FixEngine, RankWeights,
    Ranker, SqlCheck,
};

#[test]
fn fixes_reduce_detections_on_reapplication() {
    let script = "
        CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT, c TEXT);
        INSERT INTO t VALUES (1, 'x', 'y');
        SELECT * FROM t WHERE a = 1;
    ";
    let outcome = SqlCheck::new().check_script(script);
    // Apply every automatic rewrite.
    let mut patched = script.to_string();
    let mut applied = 0;
    for sf in outcome.fixes() {
        if let Fix::Rewrite { original, fixed } = &sf.fix {
            patched = patched.replace(original.trim(), fixed);
            applied += 1;
        }
    }
    assert!(applied >= 2, "implicit columns + wildcard rewrites expected, got {applied}");
    let before = outcome.report.detections.len();
    let after = SqlCheck::new().check_script(&patched).report.detections.len();
    assert!(
        after < before,
        "applying {applied} rewrites must reduce detections: {before} -> {after}"
    );
}

#[test]
fn rewritten_statements_reparse_to_equivalent_shape() {
    let script = "
        CREATE TABLE u (pk INTEGER PRIMARY KEY, name TEXT, mail TEXT);
        INSERT INTO u VALUES (1, 'n', 'm');
    ";
    let ctx = ContextBuilder::new().add_script(script).build();
    let report = Detector::default().detect(&ctx);
    let fixes = FixEngine.fix_all(&report.detections, &ctx);
    for sf in fixes {
        if let Fix::Rewrite { fixed, .. } = sf.fix {
            let reparsed = sqlcheck_parser::parse_one(&fixed);
            // Rendering the reparsed statement is a fixpoint.
            assert_eq!(reparsed.to_sql(), sqlcheck_parser::parse_one(&reparsed.to_sql()).to_sql());
        }
    }
}

#[test]
fn intra_only_is_a_superset_generator_of_noisy_detections() {
    // The §8.1 configuration comparison: intra-only never detects *fewer*
    // occurrences of the statement-level kinds than full analysis.
    let script = "
        CREATE TABLE a (x INTEGER);
        ALTER TABLE a ADD CONSTRAINT pk PRIMARY KEY (x);
        CREATE TABLE p (pk INTEGER PRIMARY KEY, first TEXT NOT NULL, last TEXT NOT NULL);
        SELECT first || last FROM p;
        SELECT DISTINCT p.first FROM p JOIN a ON a.x = p.pk;
    ";
    let ctx = ContextBuilder::new().add_script(script).build();
    let intra = Detector::new(DetectionConfig::intra_only()).detect(&ctx);
    let full = Detector::default().detect(&ctx);
    assert!(intra.detections.len() > full.detections.len());
    for kind in [
        AntiPatternKind::NoPrimaryKey,
        AntiPatternKind::ConcatenateNulls,
        AntiPatternKind::DistinctJoin,
    ] {
        assert!(intra.count(kind) > 0, "{kind} expected from intra-only");
        assert_eq!(full.count(kind), 0, "{kind} suppressed by context");
    }
}

#[test]
fn ranking_is_stable_and_weight_sensitive() {
    let script = "
        CREATE TABLE u (id INTEGER PRIMARY KEY, zone TEXT, role TEXT,
            CONSTRAINT rc CHECK (role IN ('a','b')));
        SELECT * FROM u WHERE zone = 'z1';
    ";
    let run = |w: RankWeights| {
        let ctx = ContextBuilder::new().add_script(script).build();
        let report = Detector::default().detect(&ctx);
        Ranker::with_weights(w).rank(&report)
    };
    let c1a = run(RankWeights::C1);
    let c1b = run(RankWeights::C1);
    let kinds =
        |v: &[sqlcheck::RankedDetection]| v.iter().map(|r| r.detection.kind).collect::<Vec<_>>();
    assert_eq!(kinds(&c1a), kinds(&c1b), "deterministic ranking");
    let c2 = run(RankWeights::C2);
    assert_ne!(kinds(&c1a), kinds(&c2), "weights change the order");
}

#[test]
fn custom_rule_participates_in_pipeline() {
    struct SelectStar;
    impl sqlcheck::CustomRule for SelectStar {
        fn name(&self) -> &str {
            "extra-select-star"
        }
        fn detect(&self, ctx: &sqlcheck::Context) -> Vec<sqlcheck::Detection> {
            ctx.statements
                .iter()
                .enumerate()
                .filter(|(_, s)| s.ann.wildcard)
                .map(|(i, _)| sqlcheck::Detection {
                    kind: AntiPatternKind::ColumnWildcard,
                    locus: sqlcheck::Locus::Statement { index: i },
                    message: "custom rule".into(),
                    source: sqlcheck::DetectionSource::InterQuery,
                    span: None,
                })
                .collect()
        }
    }
    let outcome = SqlCheck::new()
        .with_rule(Box::new(SelectStar))
        .check_script("SELECT * FROM t");
    assert!(
        outcome
            .report
            .detections
            .iter()
            .any(|d| &*d.message == "custom rule"),
        "custom rule ran"
    );
}
