//! Rule matrix: for every anti-pattern kind, at least one minimal
//! positive and one near-miss negative. This is the regression net that
//! keeps detection rules from drifting as they are refined.

use sqlcheck::{AntiPatternKind, DataAnalysisConfig, SqlCheck};
use sqlcheck_minidb::prelude::*;
use AntiPatternKind::*;

fn detects(sql: &str, kind: AntiPatternKind) -> bool {
    sqlcheck::find_anti_patterns(sql).iter().any(|d| d.kind == kind)
}

#[track_caller]
fn assert_positive(sql: &str, kind: AntiPatternKind) {
    assert!(detects(sql, kind), "{kind} should fire on: {sql}");
}

#[track_caller]
fn assert_negative(sql: &str, kind: AntiPatternKind) {
    assert!(!detects(sql, kind), "{kind} must not fire on: {sql}");
}

#[test]
fn multi_valued_attribute_matrix() {
    assert_positive("SELECT * FROM t WHERE user_ids LIKE '%,5,%'", MultiValuedAttribute);
    assert_positive(
        "INSERT INTO t (pk, members) VALUES (1, 'a,b,c')",
        MultiValuedAttribute,
    );
    assert_negative("SELECT * FROM t WHERE user_id = 5", MultiValuedAttribute);
    assert_negative(
        "INSERT INTO t (pk, bio) VALUES (1, 'born in Springfield, raised in Shelbyville')",
        MultiValuedAttribute,
    );
}

#[test]
fn primary_key_matrix() {
    assert_positive("CREATE TABLE t (a INT, b INT)", NoPrimaryKey);
    assert_negative("CREATE TABLE t (a INT PRIMARY KEY, b INT)", NoPrimaryKey);
    assert_negative(
        "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))",
        NoPrimaryKey,
    );
    assert_positive("CREATE TABLE t (id INT PRIMARY KEY)", GenericPrimaryKey);
    assert_negative("CREATE TABLE t (user_id INT PRIMARY KEY)", GenericPrimaryKey);
}

#[test]
fn foreign_key_matrix() {
    let no_fk = "CREATE TABLE p (pk INT PRIMARY KEY);\
                 CREATE TABLE c (ck INT PRIMARY KEY, pk INT);\
                 SELECT * FROM c JOIN p ON p.pk = c.pk;";
    assert_positive(no_fk, NoForeignKey);
    let with_fk = "CREATE TABLE p (pk INT PRIMARY KEY);\
                   CREATE TABLE c (ck INT PRIMARY KEY, pk INT REFERENCES p(pk));\
                   SELECT * FROM c JOIN p ON p.pk = c.pk;";
    assert_negative(with_fk, NoForeignKey);
    // Join between two non-key columns: not confidently an FK site.
    let fuzzy = "CREATE TABLE a (x INT PRIMARY KEY, t TEXT);\
                 CREATE TABLE b (y INT PRIMARY KEY, t TEXT);\
                 SELECT * FROM a JOIN b ON a.t = b.t;";
    assert_negative(fuzzy, NoForeignKey);
}

#[test]
fn data_in_metadata_matrix() {
    assert_positive("CREATE TABLE t (pk INT PRIMARY KEY, q1 TEXT, q2 TEXT)", DataInMetadata);
    assert_negative("CREATE TABLE t (pk INT PRIMARY KEY, question TEXT)", DataInMetadata);
    assert_negative(
        "CREATE TABLE t (pk INT PRIMARY KEY, sha256 TEXT)",
        DataInMetadata,
    );
}

#[test]
fn adjacency_list_matrix() {
    assert_positive(
        "CREATE TABLE emp (id INT PRIMARY KEY, boss INT REFERENCES emp(id))",
        AdjacencyList,
    );
    assert_negative(
        "CREATE TABLE emp (id INT PRIMARY KEY, dept INT REFERENCES dept(id))",
        AdjacencyList,
    );
}

#[test]
fn god_table_matrix() {
    let wide: Vec<String> = (0..10).map(|i| format!("col_{} INT", (b'a' + i) as char)).collect();
    assert_positive(
        &format!("CREATE TABLE t (pk INT PRIMARY KEY, {})", wide.join(", ")),
        GodTable,
    );
    assert_negative("CREATE TABLE t (pk INT PRIMARY KEY, a INT, b INT)", GodTable);
}

#[test]
fn physical_design_matrix() {
    assert_positive("CREATE TABLE t (price FLOAT)", RoundingErrors);
    assert_positive("CREATE TABLE t (price DOUBLE PRECISION)", RoundingErrors);
    assert_negative("CREATE TABLE t (price NUMERIC(10, 2))", RoundingErrors);

    assert_positive("CREATE TABLE t (s ENUM('a'))", EnumeratedTypes);
    assert_negative("CREATE TABLE t (s TEXT, CHECK (s <> ''))", EnumeratedTypes);

    assert_positive("CREATE TABLE t (photo_path TEXT)", ExternalDataStorage);
    assert_negative("CREATE TABLE t (photo BLOB)", ExternalDataStorage);
}

#[test]
fn index_matrix() {
    let underuse = "CREATE TABLE t (pk INT PRIMARY KEY, zone TEXT);\
                    SELECT pk FROM t WHERE zone = 'a';";
    assert_positive(underuse, IndexUnderuse);
    let covered = "CREATE TABLE t (pk INT PRIMARY KEY, zone TEXT);\
                   CREATE INDEX iz ON t (zone);\
                   SELECT pk FROM t WHERE zone = 'a';";
    assert_negative(covered, IndexUnderuse);
    assert_positive(
        "CREATE TABLE t (pk INT PRIMARY KEY, a INT);\
         CREATE INDEX ia ON t (a);\
         SELECT * FROM t WHERE pk = 1;",
        IndexOveruse,
    );
    assert_negative(
        "CREATE TABLE t (pk INT PRIMARY KEY, a INT);\
         CREATE INDEX ia ON t (a);\
         SELECT * FROM t WHERE a = 1;",
        IndexOveruse,
    );
}

#[test]
fn clone_table_matrix() {
    assert_positive(
        "CREATE TABLE log_2019 (pk INT PRIMARY KEY); CREATE TABLE log_2020 (pk INT PRIMARY KEY);",
        CloneTable,
    );
    assert_negative("CREATE TABLE log_2019 (pk INT PRIMARY KEY);", CloneTable);
    assert_negative(
        "CREATE TABLE log (pk INT PRIMARY KEY); CREATE TABLE blog (pk INT PRIMARY KEY);",
        CloneTable,
    );
}

#[test]
fn query_ap_matrix() {
    assert_positive("SELECT * FROM t", ColumnWildcard);
    assert_negative("SELECT a, b FROM t", ColumnWildcard);
    assert_negative("SELECT COUNT(*) FROM t", ColumnWildcard);

    assert_positive("SELECT a FROM t ORDER BY RAND()", OrderingByRand);
    assert_negative("SELECT a FROM t ORDER BY a", OrderingByRand);

    assert_positive("SELECT a FROM t WHERE b LIKE '%x'", PatternMatching);
    assert_negative("SELECT a FROM t WHERE b LIKE 'x%'", PatternMatching);
    assert_negative("SELECT a FROM t WHERE b = 'x%literal'", PatternMatching);

    assert_positive("INSERT INTO t VALUES (1)", ImplicitColumns);
    assert_negative("INSERT INTO t (a) VALUES (1)", ImplicitColumns);
    assert_negative("INSERT INTO t (a) SELECT x FROM u", ImplicitColumns);

    assert_positive("SELECT DISTINCT a FROM t JOIN u ON t.x = u.y", DistinctJoin);
    assert_negative("SELECT DISTINCT a FROM t", DistinctJoin);

    assert_positive(
        "CREATE TABLE u (name TEXT, password TEXT)",
        ReadablePassword,
    );
    assert_negative("CREATE TABLE u (name TEXT, password_hash_id INT)", ReadablePassword);
}

#[test]
fn concatenate_nulls_matrix() {
    assert_positive(
        "CREATE TABLE p (a TEXT, b TEXT); SELECT a || b FROM p;",
        ConcatenateNulls,
    );
    assert_negative(
        "CREATE TABLE p (a TEXT NOT NULL, b TEXT NOT NULL); SELECT a || b FROM p;",
        ConcatenateNulls,
    );
    assert_negative("SELECT 'a' || 'b' FROM p", ConcatenateNulls);
}

// ---------------------------------------------------------------------------
// Data rules need a live database.
// ---------------------------------------------------------------------------

fn data_detects(db: Database, kind: AntiPatternKind) -> bool {
    SqlCheck::new()
        .with_database(db)
        .with_data_config(DataAnalysisConfig::default())
        .check_script("")
        .report
        .count(kind)
        > 0
}

fn one_col_db(name: &str, dtype: DataType, values: Vec<Value>) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new("t")
            .column(Column::new("pk", DataType::Int).not_null())
            .column(Column::new(name, dtype))
            .primary_key(&["pk"]),
    )
    .unwrap();
    for (i, v) in values.into_iter().enumerate() {
        db.insert("t", vec![Value::Int(i as i64), v]).unwrap();
    }
    db
}

#[test]
fn data_rule_matrix() {
    // Incorrect data type: numeric strings in TEXT.
    let numeric = one_col_db(
        "amount",
        DataType::Text,
        (0..40).map(|i| Value::text(format!("{i}"))).collect(),
    );
    assert!(data_detects(numeric, IncorrectDataType));
    let words = one_col_db(
        "amount",
        DataType::Text,
        (0..40).map(|i| Value::text(format!("word{i}x"))).collect(),
    );
    assert!(!data_detects(words, IncorrectDataType));

    // Missing timezone.
    let naive = one_col_db(
        "at",
        DataType::Timestamp,
        (0..30).map(Value::Timestamp).collect(),
    );
    assert!(data_detects(naive, MissingTimezone));

    // Redundant column: constant vs varied.
    let constant =
        one_col_db("locale", DataType::Text, vec![Value::text("en-us"); 40]);
    assert!(data_detects(constant, RedundantColumn));
    let varied = one_col_db(
        "locale",
        DataType::Text,
        (0..40).map(|i| Value::text(format!("loc{i}"))).collect(),
    );
    assert!(!data_detects(varied, RedundantColumn));

    // No domain constraint: bounded ints without a CHECK.
    let rating = one_col_db(
        "rating",
        DataType::Int,
        (0..40).map(|i| Value::Int(1 + i % 5)).collect(),
    );
    assert!(data_detects(rating, NoDomainConstraint));
    let unbounded = one_col_db(
        "amount",
        DataType::Int,
        (0..40).map(|i| Value::Int(i * 1000)).collect(),
    );
    assert!(!data_detects(unbounded, NoDomainConstraint));
}
