//! Dialect-coverage corpus: real-world-shaped statements from PostgreSQL,
//! MySQL, SQLite, and T-SQL. The non-validating contract (§4.1) demands
//! that every one of these parses totally; where the parser models the
//! construct, we assert the shape it produced.

use sqlcheck_parser::ast::*;
use sqlcheck_parser::{parse, parse_one};

fn stmt(sql: &str) -> Statement {
    parse_one(sql).stmt
}

#[test]
fn postgres_flavoured_statements() {
    let cases = [
        "SELECT id, data->>'name' FROM events WHERE payload IS NOT NULL",
        "CREATE TABLE m (id SERIAL PRIMARY KEY, at TIMESTAMPTZ DEFAULT CURRENT_TIMESTAMP)",
        "SELECT * FROM t WHERE name ILIKE '%smith%'",
        "INSERT INTO t (a) VALUES ($1)",
        "SELECT a::TEXT FROM t",
        "CREATE INDEX CONCURRENTLY_LIKE idx ON t (a)", // tolerated garbage word
        "SELECT x FROM generate_series(1, 10) g",
    ];
    for sql in cases {
        let parsed = parse(sql);
        assert_eq!(parsed.len(), 1, "{sql}");
    }
    // Shape checks
    let p = parse_one("SELECT * FROM t WHERE name ILIKE '%x%'");
    let Statement::Select(s) = &p.stmt else { panic!() };
    let mut found = false;
    p.arena.walk(s.where_clause.unwrap(), &mut |e| {
        if let Expr::Like { op: LikeOp::ILike, .. } = e {
            found = true;
        }
    });
    assert!(found, "ILIKE recognised");
}

#[test]
fn mysql_flavoured_statements() {
    let cases = [
        "CREATE TABLE `orders` (`id` INT UNSIGNED AUTO_INCREMENT PRIMARY KEY, \
         `status` ENUM('a','b') NOT NULL) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4",
        "SELECT * FROM t WHERE name RLIKE '^ab'",
        "INSERT INTO t SET a = 1", // unmodelled INSERT form → raw source
        "REPLACE INTO t (a) VALUES (1)",
        "SELECT SQL_CALC_FOUND_ROWS a FROM t LIMIT 10",
        "UPDATE t SET a = a + 1 ORDER BY id LIMIT 5",
    ];
    for sql in cases {
        assert_eq!(parse(sql).len(), 1, "{sql}");
    }
    let Statement::CreateTable(ct) = stmt(
        "CREATE TABLE `orders` (`id` INT UNSIGNED AUTO_INCREMENT PRIMARY KEY, `s` ENUM('a','b'))",
    ) else {
        panic!()
    };
    assert!(ct.name.name_eq("orders"));
    let id = ct.column("id").unwrap();
    assert!(id.data_type.as_ref().unwrap().modifiers.iter().any(|m| m == "UNSIGNED"));
    assert!(id.is_primary_key());
    assert_eq!(ct.column("s").unwrap().data_type.as_ref().unwrap().name, "ENUM");
}

#[test]
fn sqlite_flavoured_statements() {
    let cases = [
        "CREATE TABLE t (a)", // typeless columns
        "CREATE TABLE IF NOT EXISTS t (a INTEGER PRIMARY KEY AUTOINCREMENT)",
        "SELECT * FROM t WHERE a GLOB 'ab*'",
        "INSERT OR REPLACE INTO t (a) VALUES (1)",
        "PRAGMA table_info(t)",
        "SELECT * FROM t LIMIT 10 OFFSET 5",
    ];
    for sql in cases {
        assert_eq!(parse(sql).len(), 1, "{sql}");
    }
    let Statement::CreateTable(ct) = stmt("CREATE TABLE t (a)") else { panic!() };
    assert!(ct.columns[0].data_type.is_none(), "typeless column tolerated");
    let Statement::Other(o) = stmt("PRAGMA table_info(t)") else { panic!() };
    assert_eq!(o.leading_keyword, "PRAGMA");
}

#[test]
fn tsql_flavoured_statements() {
    let cases = [
        "SELECT [weird name], [order] FROM [my table] WHERE [id] = 1",
        "CREATE TABLE [dbo].[Users] ([Id] INT PRIMARY KEY, [Name] NVARCHAR(50))",
        "SELECT TOP_N a FROM t", // TOP not modelled; must not reject
    ];
    for sql in cases {
        assert_eq!(parse(sql).len(), 1, "{sql}");
    }
    let Statement::CreateTable(ct) =
        stmt("CREATE TABLE [dbo].[Users] ([Id] INT PRIMARY KEY, [Name] NVARCHAR(50))")
    else {
        panic!()
    };
    assert!(ct.name.name_eq("Users"));
    assert_eq!(ct.name.0, vec!["dbo", "Users"]);
    assert!(ct.column("Name").unwrap().data_type.as_ref().unwrap().is_textual());
}

#[test]
fn orm_generated_statements() {
    // Django / SQLAlchemy style output: verbose quoting, parameters.
    let cases = [
        r#"SELECT "auth_user"."id", "auth_user"."username" FROM "auth_user" WHERE "auth_user"."id" = %s"#,
        r#"INSERT INTO "django_session" ("session_key", "session_data", "expire_date") VALUES (%s, %s, %s)"#,
        r#"UPDATE "shop_product" SET "price" = %(price)s WHERE "shop_product"."id" IN (%(pk_0)s, %(pk_1)s)"#,
        r#"SELECT COUNT(*) AS "__count" FROM "shop_order" INNER JOIN "shop_customer" ON ("shop_order"."customer_id" = "shop_customer"."id")"#,
    ];
    for sql in cases {
        let parsed = parse(sql);
        assert_eq!(parsed.len(), 1, "{sql}");
        assert!(
            !matches!(parsed[0].stmt, Statement::Other(_)),
            "ORM statement should be modelled: {sql}"
        );
    }
    // The INNER JOIN with parenthesised ON shapes correctly.
    let Statement::Select(s) = stmt(
        r#"SELECT COUNT(*) FROM "a" INNER JOIN "b" ON ("a"."x" = "b"."y")"#,
    ) else {
        panic!()
    };
    assert_eq!(s.joins.len(), 1);
    assert!(s.joins[0].on.is_some());
}

#[test]
fn detection_works_across_dialects() {
    use sqlcheck::AntiPatternKind;
    // The same AP spelled four ways must be caught in all of them.
    let wildcards = [
        "SELECT * FROM t",
        "SELECT `t`.* FROM `t`",
        "SELECT [t].* FROM [t]",
        r#"SELECT "t".* FROM "t""#,
    ];
    for sql in wildcards {
        let found = sqlcheck::find_anti_patterns(sql)
            .iter()
            .any(|d| d.kind == AntiPatternKind::ColumnWildcard);
        assert!(found, "wildcard missed in: {sql}");
    }
    let enums = [
        "CREATE TABLE a (s ENUM('x','y'))",
        "CREATE TABLE b (s TEXT, CHECK (s IN ('x','y')))",
        "ALTER TABLE c ADD CONSTRAINT k CHECK (s IN ('x','y'))",
    ];
    for sql in enums {
        let found = sqlcheck::find_anti_patterns(sql)
            .iter()
            .any(|d| d.kind == AntiPatternKind::EnumeratedTypes);
        assert!(found, "enum missed in: {sql}");
    }
}

#[test]
fn comments_and_whitespace_are_transparent() {
    let sql = "SELECT /* cols */ a, -- trailing\n b FROM t /* done */";
    let Statement::Select(s) = stmt(sql) else { panic!() };
    assert_eq!(s.items.len(), 2);
    assert_eq!(s.from.unwrap().name.name(), "t");
}

#[test]
fn statement_splitting_across_dialect_noise() {
    let script = r#"
        -- schema
        CREATE TABLE a (x INT); /* ; tricky ; */
        INSERT INTO a VALUES (1);
        SELECT 'a;b' FROM a;
        $body$ not ; split $body$;
        SELECT 2
    "#;
    let parsed = parse(script);
    assert_eq!(parsed.len(), 5);
}
