//! **Arena-vs-legacy equivalence suite** — the arena-allocated parse
//! path against the legacy reference paths that survived the rewrite.
//!
//! The Box/Vec AST is gone, so "legacy" here means the three reference
//! behaviours the arena path must still reproduce exactly:
//!
//! 1. the **legacy sequential front-end** (`FrontendOptions::legacy`):
//!    per-statement parse, no dedup, no threads — detections must be
//!    byte-identical to the parse-once pipeline on the same scripts;
//! 2. the **legacy two-pass splitter** (`split_spanned`) — statement
//!    spans and hashes must agree with the fused pass that feeds the
//!    arena parser;
//! 3. the **render fixed point** — `parse → to_sql → parse → to_sql`
//!    must converge after one round trip, proving the arena tree carries
//!    everything the renderer reads (no state was lost moving off
//!    `Box<Expr>`).

use sqlcheck::{BatchOptions, ContextBuilder, Detector, FrontendOptions};
use sqlcheck_parser::parser::parse_one;
use sqlcheck_parser::splitter::{split_spanned, split_stream};

/// Scripts covering every statement family the parser models, plus the
/// dialect constructs that historically broke splitting.
fn corpus() -> Vec<&'static str> {
    vec![
        "SELECT * FROM Users WHERE id = 1;",
        "SELECT u.name, o.total FROM Users u JOIN Orders o ON u.id = o.user_id \
         WHERE o.total > 100 ORDER BY o.total DESC LIMIT 5;",
        "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2;",
        "INSERT INTO Orders (id, user_id, total) VALUES (1, 2, 9.99), (2, 3, 1.50);",
        "UPDATE Accounts SET balance = balance - 100, touched = NOW() WHERE owner_id = 7;",
        "DELETE FROM Sessions WHERE expires_at < '2020-01-01';",
        "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(30) NOT NULL, \
         status VARCHAR(8) CHECK (status IN ('on', 'off')), \
         FOREIGN KEY (name) REFERENCES u(n));",
        "CREATE INDEX idx_t_name ON t (name, status);",
        "ALTER TABLE t ADD COLUMN extra TEXT;",
        "DROP TABLE IF EXISTS obsolete;",
        "SELECT name FROM Products WHERE sku LIKE '%-99' AND tags LIKE '%red%';",
        "SELECT * FROM Tenants WHERE User_IDs LIKE '%U1%';",
        "CREATE TRIGGER trg BEFORE INSERT ON t FOR EACH ROW \
         BEGIN UPDATE audit SET n = n + 1; INSERT INTO log VALUES (1); END;",
        "SELECT 'a;b' AS s; SELECT [c;d] FROM \"e;f\"; -- tail;\nSELECT 2;",
        "SELECT x FROM a UNION SELECT x FROM b;",
        "SELECT id, CASE WHEN n > 0 THEN 'pos' ELSE 'neg' END FROM t;",
    ]
}

fn detections(script: &str, fe: FrontendOptions) -> Vec<String> {
    let ctx = ContextBuilder::new().with_frontend(fe).add_script(script).build();
    Detector::default()
        .detect_batch(&ctx, &BatchOptions::default())
        .report
        .detections
        .iter()
        .map(|d| format!("{d:?}"))
        .collect()
}

/// (1) Legacy sequential front-end vs parse-once pipeline: detection
/// output must be byte-identical script by script and on the
/// concatenation of the whole corpus.
#[test]
fn legacy_frontend_and_pipeline_detect_identically() {
    let pipeline = FrontendOptions { dedup: true, parallel: true, ..FrontendOptions::default() };
    for script in corpus() {
        assert_eq!(
            detections(script, FrontendOptions::legacy()),
            detections(script, pipeline.clone()),
            "detection divergence on: {script}"
        );
    }
    let all = corpus().join("\n");
    assert_eq!(
        detections(&all, FrontendOptions::legacy()),
        detections(&all, pipeline),
        "detection divergence on concatenated corpus"
    );
}

/// (2) Legacy two-pass splitter vs the fused pass that feeds the arena
/// parser: same spans, same content hashes, on every corpus script.
#[test]
fn legacy_splitter_agrees_with_fused_on_corpus() {
    let all = corpus().join("\n");
    let legacy = split_spanned(&all);
    let fused = split_stream(&all);
    assert_eq!(legacy.len(), fused.len(), "statement count divergence");
    for (l, f) in legacy.iter().zip(&fused) {
        assert_eq!(l.span, f.span, "span divergence");
        assert_eq!(l.content_hash, f.content_hash, "hash divergence");
    }
}

/// (3) Render fixed point: one round trip through the arena tree and
/// back to text must be stable, and the re-parsed tree structurally
/// equal (same statement shape, same arena size) to the first re-parse.
#[test]
fn render_reaches_a_fixed_point_after_one_round_trip() {
    for script in corpus() {
        for stmt_text in script.split_inclusive(';') {
            if stmt_text.trim().is_empty() {
                continue;
            }
            let once = parse_one(stmt_text).to_sql();
            let p1 = parse_one(&once);
            let twice = p1.to_sql();
            assert_eq!(once, twice, "render not a fixed point for: {stmt_text}");
            let p2 = parse_one(&twice);
            assert_eq!(
                format!("{:?}", p1.stmt),
                format!("{:?}", p2.stmt),
                "structural divergence after round trip: {stmt_text}"
            );
            assert_eq!(p1.arena.len(), p2.arena.len(), "arena size divergence: {stmt_text}");
        }
    }
}

/// Parsing the same text twice yields structurally identical arenas —
/// the thread-local arena handoff leaks no state between statements.
#[test]
fn repeated_parses_are_structurally_identical() {
    for script in corpus() {
        let a = parse_one(script);
        let b = parse_one(script);
        assert_eq!(format!("{:?}", a.stmt), format!("{:?}", b.stmt));
        assert_eq!(
            format!("{:?}", a.arena),
            format!("{:?}", b.arena),
            "arena node divergence on: {script}"
        );
    }
}
