//! Pipeline-level property tests: the whole toolchain must be total,
//! deterministic, and self-consistent on arbitrary and generated inputs.

use proptest::prelude::*;
use sqlcheck::{AntiPatternKind, SqlCheck};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full pipeline never panics on arbitrary input.
    #[test]
    fn pipeline_is_total(input in ".{0,400}") {
        let _ = SqlCheck::new().check_script(&input);
    }

    /// Detection is deterministic: the same script yields the same report.
    #[test]
    fn detection_is_deterministic(
        tables in prop::collection::vec("[a-z][a-z0-9_]{0,10}", 1..4),
        cols in prop::collection::vec("[a-z][a-z0-9_]{0,8}", 1..4),
    ) {
        let mut script = String::new();
        for t in &tables {
            script.push_str(&format!(
                "CREATE TABLE {t} ({});\n",
                cols.iter().map(|c| format!("{c} INT")).collect::<Vec<_>>().join(", ")
            ));
            script.push_str(&format!("SELECT * FROM {t};\n"));
        }
        let a = SqlCheck::new().check_script(&script);
        let b = SqlCheck::new().check_script(&script);
        let ka: Vec<_> = a.ranked.iter().map(|r| (r.detection.kind, r.score.to_bits())).collect();
        let kb: Vec<_> = b.ranked.iter().map(|r| (r.detection.kind, r.score.to_bits())).collect();
        prop_assert_eq!(ka, kb);
    }

    /// Every fix suggestion is non-empty, and rewrites always differ from
    /// the original statement.
    #[test]
    fn fixes_are_well_formed(
        table in "[a-z][a-z0-9_]{0,10}",
        n_cols in 1usize..6,
        vals in prop::collection::vec(0i64..100, 1..6),
    ) {
        let cols: Vec<String> = (0..n_cols).map(|i| format!("c{i} INT")).collect();
        let script = format!(
            "CREATE TABLE {table} ({});\nINSERT INTO {table} VALUES ({});",
            cols.join(", "),
            vals.iter().map(i64::to_string).collect::<Vec<_>>().join(", ")
        );
        let outcome = SqlCheck::new().check_script(&script);
        for sf in &outcome.fixes {
            match &sf.fix {
                sqlcheck::Fix::Rewrite { original, fixed } => {
                    prop_assert!(!fixed.is_empty());
                    prop_assert_ne!(original.trim(), fixed.trim());
                    // the rewrite itself must parse
                    let reparsed = sqlcheck_parser::parse(fixed);
                    prop_assert_eq!(reparsed.len(), 1);
                }
                sqlcheck::Fix::SchemaChange { statements, .. } => {
                    prop_assert!(!statements.is_empty());
                }
                sqlcheck::Fix::Textual { advice } => prop_assert!(!advice.is_empty()),
            }
        }
    }

    /// Implicit-columns detection fires exactly when the column list is
    /// missing and the arity rewrite preserves the VALUES.
    #[test]
    fn implicit_columns_invariant(
        n_cols in 1usize..6,
        with_list in any::<bool>(),
    ) {
        let cols: Vec<String> = (0..n_cols).map(|i| format!("c{i}")).collect();
        let decl: Vec<String> = cols.iter().map(|c| format!("{c} INT")).collect();
        let vals: Vec<String> = (0..n_cols).map(|i| i.to_string()).collect();
        let insert = if with_list {
            format!("INSERT INTO t ({}) VALUES ({})", cols.join(", "), vals.join(", "))
        } else {
            format!("INSERT INTO t VALUES ({})", vals.join(", "))
        };
        let script = format!("CREATE TABLE t ({});\n{insert};", decl.join(", "));
        let outcome = SqlCheck::new().check_script(&script);
        let found = outcome.report.count(AntiPatternKind::ImplicitColumns) > 0;
        prop_assert_eq!(found, !with_list);
        if !with_list {
            let fix = outcome
                .fixes
                .iter()
                .find(|f| f.detection.kind == AntiPatternKind::ImplicitColumns)
                .unwrap();
            if let sqlcheck::Fix::Rewrite { fixed, .. } = &fix.fix {
                for c in &cols {
                    prop_assert!(fixed.contains(c.as_str()), "{fixed} must list {c}");
                }
            } else {
                prop_assert!(false, "arity matches, rewrite expected");
            }
        }
    }

    /// Ranked scores are monotone non-increasing and within [0, 1].
    #[test]
    fn scores_are_normalised_and_sorted(seed in 0u64..50) {
        let corpus = sqlcheck_workload::github::generate_corpus(
            sqlcheck_workload::github::CorpusConfig {
                repositories: 1,
                statements_per_repo: 30,
                seed,
            },
        );
        let outcome = SqlCheck::new().check_script(&corpus[0].script());
        let mut prev = f64::INFINITY;
        for r in &outcome.ranked {
            prop_assert!((0.0..=1.0).contains(&r.score), "score {} out of range", r.score);
            prop_assert!(r.score <= prev);
            prev = r.score;
        }
    }
}
