//! Pipeline-level property tests: the whole toolchain must be total,
//! deterministic, and self-consistent on arbitrary and generated inputs.
//!
//! The build environment has no access to the `proptest` crate, so these
//! properties run over deterministically generated random cases: same
//! seeds, same cases, every run.

use sqlcheck::{AntiPatternKind, SqlCheck};
use sqlcheck_minidb::stats::SmallRng;

fn ident(rng: &mut SmallRng, max_extra: usize) -> String {
    const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut s = String::new();
    s.push(HEAD[rng.gen_range(HEAD.len())] as char);
    for _ in 0..rng.gen_range(max_extra + 1) {
        s.push(TAIL[rng.gen_range(TAIL.len())] as char);
    }
    s
}

fn arbitrary_string(rng: &mut SmallRng, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'z', 'A', '0', '9', ' ', '\t', '\n', '(', ')', ',', ';', '.', '*', '=', '<',
        '>', '\'', '"', '`', '[', ']', '%', '_', '$', ':', '?', '-', '/', '|', '\\', 'é',
        '中',
    ];
    let len = rng.gen_range(max_len + 1);
    (0..len).map(|_| POOL[rng.gen_range(POOL.len())]).collect()
}

const CASES: usize = 64;

/// The full pipeline never panics on arbitrary input.
#[test]
fn pipeline_is_total() {
    let mut rng = SmallRng::new(0x70741);
    for _ in 0..CASES {
        let input = arbitrary_string(&mut rng, 400);
        let _ = SqlCheck::new().check_script(&input);
    }
}

/// Detection is deterministic: the same script yields the same report.
#[test]
fn detection_is_deterministic() {
    let mut rng = SmallRng::new(0xDE7);
    for case in 0..CASES {
        let n_tables = 1 + rng.gen_range(3);
        let n_cols = 1 + rng.gen_range(3);
        let tables: Vec<String> = (0..n_tables).map(|_| ident(&mut rng, 10)).collect();
        let cols: Vec<String> = (0..n_cols).map(|_| ident(&mut rng, 8)).collect();
        let mut script = String::new();
        for t in &tables {
            script.push_str(&format!(
                "CREATE TABLE {t} ({});\n",
                cols.iter().map(|c| format!("{c} INT")).collect::<Vec<_>>().join(", ")
            ));
            script.push_str(&format!("SELECT * FROM {t};\n"));
        }
        let a = SqlCheck::new().check_script(&script);
        let b = SqlCheck::new().check_script(&script);
        let ka: Vec<_> =
            a.ranked().iter().map(|r| (r.detection.kind, r.score.to_bits())).collect();
        let kb: Vec<_> =
            b.ranked().iter().map(|r| (r.detection.kind, r.score.to_bits())).collect();
        assert_eq!(ka, kb, "case {case}");
    }
}

/// Every fix suggestion is non-empty, and rewrites always differ from
/// the original statement.
#[test]
fn fixes_are_well_formed() {
    let mut rng = SmallRng::new(0xF13);
    for case in 0..CASES {
        let table = ident(&mut rng, 10);
        let n_cols = 1 + rng.gen_range(5);
        let n_vals = 1 + rng.gen_range(5);
        let cols: Vec<String> = (0..n_cols).map(|i| format!("c{i} INT")).collect();
        let vals: Vec<String> = (0..n_vals).map(|_| rng.gen_range(100).to_string()).collect();
        let script = format!(
            "CREATE TABLE {table} ({});\nINSERT INTO {table} VALUES ({});",
            cols.join(", "),
            vals.join(", ")
        );
        let outcome = SqlCheck::new().check_script(&script);
        for sf in outcome.fixes() {
            match &sf.fix {
                sqlcheck::Fix::Rewrite { original, fixed } => {
                    assert!(!fixed.is_empty(), "case {case}");
                    assert_ne!(original.trim(), fixed.trim(), "case {case}");
                    // the rewrite itself must parse
                    let reparsed = sqlcheck_parser::parse(fixed);
                    assert_eq!(reparsed.len(), 1, "case {case}: {fixed}");
                }
                sqlcheck::Fix::SchemaChange { statements, .. } => {
                    assert!(!statements.is_empty(), "case {case}");
                }
                sqlcheck::Fix::Textual { advice } => assert!(!advice.is_empty(), "case {case}"),
            }
        }
    }
}

/// Implicit-columns detection fires exactly when the column list is
/// missing and the arity rewrite preserves the VALUES.
#[test]
fn implicit_columns_invariant() {
    let mut rng = SmallRng::new(0x1C01);
    for case in 0..CASES {
        let n_cols = 1 + rng.gen_range(5);
        let with_list = rng.gen_range(2) == 1;
        let cols: Vec<String> = (0..n_cols).map(|i| format!("c{i}")).collect();
        let decl: Vec<String> = cols.iter().map(|c| format!("{c} INT")).collect();
        let vals: Vec<String> = (0..n_cols).map(|i| i.to_string()).collect();
        let insert = if with_list {
            format!("INSERT INTO t ({}) VALUES ({})", cols.join(", "), vals.join(", "))
        } else {
            format!("INSERT INTO t VALUES ({})", vals.join(", "))
        };
        let script = format!("CREATE TABLE t ({});\n{insert};", decl.join(", "));
        let outcome = SqlCheck::new().check_script(&script);
        let found = outcome.report.count(AntiPatternKind::ImplicitColumns) > 0;
        assert_eq!(found, !with_list, "case {case}");
        if !with_list {
            let fix = outcome
                .fixes()
                .iter()
                .find(|f| f.detection.kind == AntiPatternKind::ImplicitColumns)
                .unwrap();
            if let sqlcheck::Fix::Rewrite { fixed, .. } = &fix.fix {
                for c in &cols {
                    assert!(fixed.contains(c.as_str()), "case {case}: {fixed} must list {c}");
                }
            } else {
                panic!("case {case}: arity matches, rewrite expected");
            }
        }
    }
}

/// Ranked scores are monotone non-increasing and within [0, 1].
#[test]
fn scores_are_normalised_and_sorted() {
    for seed in 0u64..50 {
        let corpus = sqlcheck_workload::github::generate_corpus(
            sqlcheck_workload::github::CorpusConfig {
                repositories: 1,
                statements_per_repo: 30,
                seed,
            },
        );
        let outcome = SqlCheck::new().check_script(&corpus[0].script());
        let mut prev = f64::INFINITY;
        for r in outcome.ranked() {
            assert!((0.0..=1.0).contains(&r.score), "seed {seed}: score {} range", r.score);
            assert!(r.score <= prev, "seed {seed}: monotone");
            prev = r.score;
        }
    }
}
